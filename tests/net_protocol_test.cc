// Wire-protocol unit tests: frame codec round trips, incremental
// decoding, the corrupt-stream poisoning rule, capacity-cap enforcement
// mirroring the PR-2 deserializer discipline, a seeded garbage fuzz, and
// the version-negotiation matrix pinned against docs/PROTOCOL.md so the
// spec and the code cannot drift silently.

#include "src/net/protocol.h"

#include <cstdio>
#include <cstring>
#include <random>
#include <string>

#include "gtest/gtest.h"
#include "src/common/serialize.h"

namespace asketch {
namespace net {
namespace {

Frame DecodeOne(const std::vector<uint8_t>& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto frame = decoder.Next();
  EXPECT_TRUE(frame.has_value());
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), 0u);
  return frame.value_or(Frame{});
}

TEST(FrameCodec, HeaderLayout) {
  const auto bytes =
      EncodeFrame(Opcode::kQuery, kFlagResponse, NetStatus::kOk,
                  std::vector<uint8_t>{0xaa, 0xbb});
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 2);
  // length counts opcode+flags+status+payload, little-endian.
  EXPECT_EQ(bytes[0], 6u);
  EXPECT_EQ(bytes[1], 0u);
  EXPECT_EQ(bytes[4], static_cast<uint8_t>(Opcode::kQuery));
  EXPECT_EQ(bytes[5], kFlagResponse);
}

TEST(FrameCodec, RoundTrip) {
  const std::vector<uint8_t> payload{1, 2, 3, 4, 5};
  const Frame frame = DecodeOne(
      EncodeFrame(Opcode::kUpdate, kFlagWantAck, NetStatus::kOk, payload));
  EXPECT_EQ(frame.opcode, Opcode::kUpdate);
  EXPECT_TRUE(frame.want_ack());
  EXPECT_FALSE(frame.is_response());
  EXPECT_EQ(frame.status, NetStatus::kOk);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameCodec, EmptyPayload) {
  const Frame frame = DecodeOne(EncodeStatsRequest());
  EXPECT_EQ(frame.opcode, Opcode::kStats);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameDecoderTest, ByteAtATime) {
  const auto bytes = EncodeQueryRequest(0xdeadbeef);
  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    decoder.Feed(&bytes[i], 1);
    EXPECT_FALSE(decoder.Next().has_value());
  }
  decoder.Feed(&bytes.back(), 1);
  const auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  item_t key = 0;
  EXPECT_TRUE(ParseQueryRequest(frame->payload, &key));
  EXPECT_EQ(key, 0xdeadbeefu);
}

TEST(FrameDecoderTest, MultipleFramesOneFeed) {
  auto bytes = EncodeQueryRequest(1);
  const auto second = EncodeTopKRequest(5);
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size());
  auto a = decoder.Next();
  auto b = decoder.Next();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->opcode, Opcode::kQuery);
  EXPECT_EQ(b->opcode, Opcode::kTopK);
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameDecoderTest, OversizedLengthPoisons) {
  uint8_t bytes[8] = {};
  const uint32_t length = 4 + kMaxFramePayloadBytes + 1;
  std::memcpy(bytes, &length, 4);
  FrameDecoder decoder;
  decoder.Feed(bytes, sizeof(bytes));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.corrupt());
  // A poisoned decoder stays poisoned: further bytes are ignored.
  const auto good = EncodeStatsRequest();
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameDecoderTest, UndersizedLengthPoisons) {
  uint8_t bytes[4] = {3, 0, 0, 0};  // below the 4-byte header tail
  FrameDecoder decoder;
  decoder.Feed(bytes, sizeof(bytes));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.corrupt());
}

TEST(FrameDecoderTest, TruncatedFrameNeverDelivers) {
  const auto bytes = EncodeQueryRequest(7);
  FrameDecoder decoder;
  decoder.Feed(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_FALSE(decoder.corrupt());
  EXPECT_EQ(decoder.buffered(), bytes.size() - 1);
}

// Seeded garbage fuzz: random byte streams must never crash, over-read
// (ASan would flag it), or deliver a frame with an out-of-bounds
// payload. The decoder either yields well-formed frames or poisons.
TEST(FrameDecoderTest, GarbageFuzz) {
  std::mt19937 rng(20260807);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    std::uniform_int_distribution<int> len_dist(1, 512);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    for (int feed = 0; feed < 8 && !decoder.corrupt(); ++feed) {
      std::vector<uint8_t> chunk(len_dist(rng));
      for (auto& b : chunk) b = static_cast<uint8_t>(byte_dist(rng));
      decoder.Feed(chunk.data(), chunk.size());
      while (auto frame = decoder.Next()) {
        EXPECT_LE(frame->payload.size(), kMaxFramePayloadBytes);
        // Parsers must reject or accept without crashing.
        std::vector<Tuple> tuples;
        ParseUpdateRequest(frame->payload, &tuples);
        std::vector<item_t> keys;
        ParseQueryBatchRequest(frame->payload, &keys);
        WireStats stats;
        ParseStatsResponse(frame->payload, &stats);
      }
    }
  }
}

TEST(TypedPayloads, HelloRoundTrip) {
  const Frame frame = DecodeOne(EncodeHelloRequest(HelloRequest{}));
  HelloRequest hello{0, 0, 0};
  ASSERT_TRUE(ParseHelloRequest(frame.payload, &hello));
  EXPECT_EQ(hello.magic, kProtocolMagic);
  EXPECT_EQ(hello.min_version, kProtocolVersionMin);
  EXPECT_EQ(hello.max_version, kProtocolVersionMax);

  const Frame reply = DecodeOne(EncodeHelloResponse(HelloResponse{1, 4}));
  HelloResponse parsed;
  ASSERT_TRUE(ParseHelloResponse(reply.payload, &parsed));
  EXPECT_EQ(parsed.version, 1u);
  EXPECT_EQ(parsed.num_shards, 4u);
}

TEST(TypedPayloads, HelloRejectsBadMagic) {
  BinaryWriter writer;
  writer.PutU32(0x12345678u);
  writer.PutU32(1);
  writer.PutU32(1);
  HelloRequest hello;
  EXPECT_FALSE(ParseHelloRequest(writer.buffer(), &hello));
}

TEST(TypedPayloads, UpdateRoundTrip) {
  const std::vector<Tuple> tuples{{1, 2}, {3, 4}, {5, 1}};
  const Frame frame = DecodeOne(EncodeUpdateRequest(tuples, true));
  EXPECT_TRUE(frame.want_ack());
  std::vector<Tuple> parsed;
  ASSERT_TRUE(ParseUpdateRequest(frame.payload, &parsed));
  EXPECT_EQ(parsed, tuples);
}

TEST(TypedPayloads, UpdateRejectsLyingCount) {
  // Declares 3 tuples but carries 2: byte cross-check must fail.
  BinaryWriter writer;
  writer.PutU32(3);
  for (int i = 0; i < 2; ++i) {
    writer.PutU32(1);
    writer.PutU32(1);
  }
  std::vector<Tuple> parsed;
  EXPECT_FALSE(ParseUpdateRequest(writer.buffer(), &parsed));
  // Trailing garbage after the declared tuples must also fail.
  BinaryWriter trailing;
  trailing.PutU32(1);
  trailing.PutU32(1);
  trailing.PutU32(1);
  trailing.PutU8(0);
  EXPECT_FALSE(ParseUpdateRequest(trailing.buffer(), &parsed));
}

TEST(TypedPayloads, UpdateRejectsCountBeyondCap) {
  BinaryWriter writer;
  writer.PutU32(kMaxBatchTuples + 1);
  std::vector<Tuple> parsed;
  EXPECT_FALSE(ParseUpdateRequest(writer.buffer(), &parsed));
}

TEST(TypedPayloads, QueryBatchRejectsCountBeyondCap) {
  BinaryWriter writer;
  writer.PutU32(kMaxQueryKeys + 1);
  std::vector<item_t> parsed;
  EXPECT_FALSE(ParseQueryBatchRequest(writer.buffer(), &parsed));
}

TEST(TypedPayloads, TopKRoundTrip) {
  const std::vector<TopKEntry> entries{{7, 100, 40}, {9, 50, 50}};
  const Frame frame = DecodeOne(EncodeTopKResponse(entries));
  std::vector<TopKEntry> parsed;
  ASSERT_TRUE(ParseTopKResponse(frame.payload, &parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].key, 7u);
  EXPECT_EQ(parsed[0].estimate, 100u);
  EXPECT_EQ(parsed[1].exact_hits, 50u);
}

TEST(TypedPayloads, StatsRoundTrip) {
  WireStats stats;
  stats.num_shards = 4;
  stats.ingested = 1'000'000;
  stats.shed_weight = 5;
  stats.filtered_weight = 900'000;
  stats.sketch_weight = 100'000;
  stats.per_shard_ingested = {1, 2, 3, 4};
  const Frame frame = DecodeOne(EncodeStatsResponse(stats));
  WireStats parsed;
  ASSERT_TRUE(ParseStatsResponse(frame.payload, &parsed));
  EXPECT_EQ(parsed.ingested, stats.ingested);
  EXPECT_EQ(parsed.per_shard_ingested, stats.per_shard_ingested);
}

TEST(TypedPayloads, DigestRoundTrip) {
  const StateDigest digest{42, 1'000'000, 0xdeadbeef};
  const Frame frame =
      DecodeOne(EncodeStateDigestResponse(Opcode::kSnapshot, digest));
  EXPECT_EQ(frame.opcode, Opcode::kSnapshot);
  StateDigest parsed;
  ASSERT_TRUE(ParseStateDigestResponse(frame.payload, &parsed));
  EXPECT_EQ(parsed.generation, 42u);
  EXPECT_EQ(parsed.ingested, 1'000'000u);
  EXPECT_EQ(parsed.digest, 0xdeadbeefu);
}

TEST(TypedPayloads, ErrorResponseCarriesMessage) {
  const Frame frame = DecodeOne(EncodeErrorResponse(
      Opcode::kTopK, NetStatus::kBadRequest, "k out of range"));
  EXPECT_EQ(frame.opcode, Opcode::kTopK);
  EXPECT_TRUE(frame.is_response());
  EXPECT_EQ(frame.status, NetStatus::kBadRequest);
  EXPECT_EQ(std::string(frame.payload.begin(), frame.payload.end()),
            "k out of range");
}

TEST(Negotiation, Matrix) {
  // Equal single-version ranges.
  EXPECT_EQ(NegotiateVersion(1, 1, 1, 1), 1u);
  // Overlap picks the highest common version.
  EXPECT_EQ(NegotiateVersion(1, 3, 2, 5), 3u);
  EXPECT_EQ(NegotiateVersion(2, 5, 1, 3), 3u);
  // Disjoint ranges fail.
  EXPECT_EQ(NegotiateVersion(1, 1, 2, 3), std::nullopt);
  EXPECT_EQ(NegotiateVersion(4, 5, 1, 3), std::nullopt);
  // Inverted ranges are malformed.
  EXPECT_EQ(NegotiateVersion(2, 1, 1, 1), std::nullopt);
  EXPECT_EQ(NegotiateVersion(1, 1, 3, 2), std::nullopt);
}

// ---------------------------------------------------------------------
// Doc pinning: docs/PROTOCOL.md carries a machine-readable constants
// line and an opcode table; this test fails when either disagrees with
// the code, so the spec cannot drift silently.
// ---------------------------------------------------------------------

std::string ReadProtocolDoc() {
  const std::string path =
      std::string(ASKETCH_REPO_ROOT) + "/docs/PROTOCOL.md";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  return text;
}

TEST(ProtocolDoc, ConstantsMatchCode) {
  const std::string doc = ReadProtocolDoc();
  ASSERT_FALSE(doc.empty()) << "docs/PROTOCOL.md missing";
  char expected[160];
  std::snprintf(expected, sizeof(expected),
                "<!-- protocol-constants: version_min=%u version_max=%u "
                "magic=0x%08x max_payload=%u -->",
                kProtocolVersionMin, kProtocolVersionMax, kProtocolMagic,
                kMaxFramePayloadBytes);
  EXPECT_NE(doc.find(expected), std::string::npos)
      << "docs/PROTOCOL.md protocol-constants line disagrees with "
         "src/net/protocol.h; expected: "
      << expected;
}

TEST(ProtocolDoc, OpcodeTableMatchesCode) {
  const std::string doc = ReadProtocolDoc();
  ASSERT_FALSE(doc.empty()) << "docs/PROTOCOL.md missing";
  const struct {
    Opcode opcode;
    const char* name;
  } kOpcodes[] = {
      {Opcode::kHello, "HELLO"},         {Opcode::kUpdate, "UPDATE"},
      {Opcode::kQuery, "QUERY"},         {Opcode::kQueryBatch, "QUERY_BATCH"},
      {Opcode::kTopK, "TOPK"},           {Opcode::kStats, "STATS"},
      {Opcode::kSnapshot, "SNAPSHOT"},   {Opcode::kDigest, "DIGEST"},
  };
  for (const auto& entry : kOpcodes) {
    char row[64];
    std::snprintf(row, sizeof(row), "| `0x%02x` | `%s` |",
                  static_cast<unsigned>(entry.opcode), entry.name);
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/PROTOCOL.md opcode table missing or stale row: " << row;
  }
}

TEST(ProtocolDoc, StatusTableMatchesCode) {
  const std::string doc = ReadProtocolDoc();
  ASSERT_FALSE(doc.empty()) << "docs/PROTOCOL.md missing";
  for (uint16_t code = 0; code <= 8; ++code) {
    const auto status = static_cast<NetStatus>(code);
    char row[64];
    std::snprintf(row, sizeof(row), "| %u | `%s` |", code,
                  std::string(NetStatusName(status)).c_str());
    EXPECT_NE(doc.find(row), std::string::npos)
        << "docs/PROTOCOL.md status table missing or stale row: " << row;
  }
}

}  // namespace
}  // namespace net
}  // namespace asketch
