// Concurrent read/write equivalence tests for the lock-free serving
// read path (ShardSet::Estimate / EstimateBatch / TopK against live
// ingest workers). The checks are oracle-bracketed rather than exact:
// AppliedTuples(shard) only advances at sub-batch boundaries, so a
// reader can bracket each query with the boundary observed before (b1)
// and after (b2) the call and require the answer to fall between the
// reference answers at prefix b1 and prefix b2+1 — the strongest
// statement that holds while a worker is mid-batch. The reference is a
// second ServingSketch replaying the same per-shard sub-batch sequence
// offline (deterministic: Ingest splits preserve arrival order and the
// queue never overflows here, so the worker applies exactly that
// sequence).
//
// This test runs in the TSan CI job (.github/workflows/ci.yml): the
// seqlock and the relaxed cell loads are fence-free and fully atomic,
// so the same binary that proves bracketing also proves race-freedom.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/net/shard_set.h"

namespace asketch {
namespace net {
namespace {

/// xorshift64* — deterministic stream without pulling in the workload
/// generator (keys must be re-derivable by the oracle).
uint64_t NextRand(uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 2685821657736338717ull;
}

struct OracleStream {
  /// batches[b] is the b-th Ingest call's payload.
  std::vector<std::vector<Tuple>> batches;
  /// cumulative[s][b]: tuples owned by shard s in the first b batches —
  /// the only values AppliedTuples(s) can ever return here.
  std::vector<std::vector<uint64_t>> cumulative;
  /// answers[s][b][p]: reference estimate of probe p against shard s's
  /// state after its prefix of b batches (only meaningful when probe p
  /// is owned by shard s).
  std::vector<std::vector<std::vector<count_t>>> answers;
  std::vector<item_t> probes;
};

/// Builds a skewed stream (small universe, so filter<->sketch exchanges
/// actually fire) and replays it per shard through a reference
/// ServingSketch, recording the estimate of every probe key at every
/// sub-batch boundary.
OracleStream BuildOracle(const ShardSetOptions& options, uint32_t num_batches,
                         uint32_t batch_size, uint32_t universe,
                         uint32_t num_probes) {
  const uint32_t n = options.num_shards;
  OracleStream oracle;
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  oracle.batches.resize(num_batches);
  for (auto& batch : oracle.batches) {
    batch.reserve(batch_size);
    for (uint32_t i = 0; i < batch_size; ++i) {
      // Squaring the draw skews mass toward low keys: hot keys pass
      // through the sketch, outgrow the filter minimum, and exchange in.
      const uint64_t draw = NextRand(rng) % universe;
      batch.push_back(
          Tuple{static_cast<item_t>((draw * draw) % universe), 1});
    }
  }
  oracle.probes.reserve(num_probes);
  for (uint32_t p = 0; p < num_probes; ++p) {
    // Half hot (small keys), half across the universe (sketch-resident).
    oracle.probes.push_back(p % 2 == 0 ? p / 2
                                       : (NextRand(rng) % universe));
  }
  oracle.cumulative.assign(n, std::vector<uint64_t>(num_batches + 1, 0));
  oracle.answers.assign(
      n, std::vector<std::vector<count_t>>(
             num_batches + 1, std::vector<count_t>(num_probes, 0)));
  for (uint32_t s = 0; s < n; ++s) {
    ServingSketch ref =
        MakeASketchCountMin<RelaxedHeapFilter>(options.shard_config);
    std::vector<Tuple> sub;
    for (uint32_t b = 0; b < num_batches; ++b) {
      sub.clear();
      for (const Tuple& t : oracle.batches[b]) {
        if (ShardOf(t.key, n) == s) sub.push_back(t);
      }
      if (!sub.empty()) ref.UpdateBatch(sub);
      oracle.cumulative[s][b + 1] = oracle.cumulative[s][b] + sub.size();
      for (uint32_t p = 0; p < num_probes; ++p) {
        oracle.answers[s][b + 1][p] = ref.Estimate(oracle.probes[p]);
      }
    }
  }
  return oracle;
}

/// Index of the boundary whose cumulative count equals `applied` (the
/// last such boundary; empty sub-batches repeat the value with an
/// unchanged reference state, so the ambiguity is answer-preserving).
uint32_t BoundaryAt(const std::vector<uint64_t>& cumulative,
                    uint64_t applied) {
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), applied);
  return static_cast<uint32_t>(it - cumulative.begin()) - 1;
}

/// First boundary strictly past `applied` — the post-state of the
/// sub-batch a worker may have been applying while the reader raced it
/// (the bump happens after application, so the in-flight sub-batch is
/// at most the one producing this boundary).
uint32_t BoundaryAfter(const std::vector<uint64_t>& cumulative,
                       uint64_t applied) {
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), applied);
  if (it == cumulative.end()) {
    return static_cast<uint32_t>(cumulative.size()) - 1;
  }
  return static_cast<uint32_t>(it - cumulative.begin());
}

ShardSetOptions SmallShards() {
  ShardSetOptions options;
  options.num_shards = 2;
  options.shard_config.total_bytes = 16 * 1024;
  options.shard_config.filter_items = 8;  // small filter → many exchanges
  // The oracle replay assumes the worker applies exactly the enqueued
  // sub-batch sequence; a queue overflow would let the caller apply a
  // batch inline, racing the worker's earlier batches. Make the queue
  // deep enough that overflow is impossible.
  options.max_queue_batches = 4096;
  return options;
}

TEST(NetReadConcurrencyTest, EstimateBracketedByOracleDuringIngest) {
  const ShardSetOptions options = SmallShards();
  constexpr uint32_t kBatches = 192;
  constexpr uint32_t kBatchSize = 128;
  const OracleStream oracle =
      BuildOracle(options, kBatches, kBatchSize, /*universe=*/256,
                  /*num_probes=*/32);
  ShardSet set(options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> queries{0};
  auto reader = [&] {
    const uint32_t n = options.num_shards;
    while (!done.load(std::memory_order_acquire)) {
      for (uint32_t p = 0; p < oracle.probes.size(); ++p) {
        const item_t key = oracle.probes[p];
        const uint32_t s = ShardOf(key, n);
        const uint64_t a1 = set.AppliedTuples(s);
        const count_t got = set.Estimate(key);
        const uint64_t a2 = set.AppliedTuples(s);
        const uint32_t b1 = BoundaryAt(oracle.cumulative[s], a1);
        const uint32_t b2 = BoundaryAfter(oracle.cumulative[s], a2);
        const count_t lo = oracle.answers[s][b1][p];
        const count_t hi = oracle.answers[s][b2][p];
        queries.fetch_add(1, std::memory_order_relaxed);
        if (got < lo || got > hi) {
          violations.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "key " << key << " estimate " << got
                        << " outside oracle bracket [" << lo << ", " << hi
                        << "] (boundaries " << b1 << ".." << b2 << ")";
        }
      }
    }
  };
  std::thread r1(reader);
  std::thread r2(reader);
  for (const auto& batch : oracle.batches) {
    EXPECT_EQ(set.Ingest(batch), 0u);
  }
  set.Drain();
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(queries.load(), 0u);

  // Quiescent: every probe must now answer exactly the full-prefix
  // oracle value.
  for (uint32_t p = 0; p < oracle.probes.size(); ++p) {
    const uint32_t s = ShardOf(oracle.probes[p], options.num_shards);
    EXPECT_EQ(set.Estimate(oracle.probes[p]),
              oracle.answers[s][kBatches][p])
        << "probe " << oracle.probes[p];
  }
}

TEST(NetReadConcurrencyTest, EstimateBatchBracketedByOracleDuringIngest) {
  const ShardSetOptions options = SmallShards();
  constexpr uint32_t kBatches = 128;
  const OracleStream oracle =
      BuildOracle(options, kBatches, /*batch_size=*/128, /*universe=*/256,
                  /*num_probes=*/32);
  ShardSet set(options);
  const uint32_t n = options.num_shards;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  auto reader = [&] {
    std::vector<uint64_t> a1(n), a2(n), estimates;
    while (!done.load(std::memory_order_acquire)) {
      // The whole batched call is bracketed per shard: every key's
      // answer must fall inside its own shard's bracket.
      for (uint32_t s = 0; s < n; ++s) a1[s] = set.AppliedTuples(s);
      set.EstimateBatch(oracle.probes, &estimates);
      for (uint32_t s = 0; s < n; ++s) a2[s] = set.AppliedTuples(s);
      ASSERT_EQ(estimates.size(), oracle.probes.size());
      for (uint32_t p = 0; p < oracle.probes.size(); ++p) {
        const uint32_t s = ShardOf(oracle.probes[p], n);
        const count_t lo =
            oracle.answers[s][BoundaryAt(oracle.cumulative[s], a1[s])][p];
        const count_t hi =
            oracle
                .answers[s][BoundaryAfter(oracle.cumulative[s], a2[s])][p];
        if (estimates[p] < lo || estimates[p] > hi) {
          violations.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "key " << oracle.probes[p] << " batch answer "
                        << estimates[p] << " outside [" << lo << ", " << hi
                        << "]";
        }
      }
    }
  };
  std::thread r1(reader);
  for (const auto& batch : oracle.batches) set.Ingest(batch);
  set.Drain();
  done.store(true, std::memory_order_release);
  r1.join();
  EXPECT_EQ(violations.load(), 0u);

  // Quiescent batched answers equal per-key answers equal the oracle.
  std::vector<uint64_t> estimates;
  set.EstimateBatch(oracle.probes, &estimates);
  for (uint32_t p = 0; p < oracle.probes.size(); ++p) {
    EXPECT_EQ(estimates[p], set.Estimate(oracle.probes[p]));
  }
}

TEST(NetReadConcurrencyTest, TopKStaysWellFormedDuringIngest) {
  const ShardSetOptions options = SmallShards();
  constexpr uint32_t kBatches = 128;
  constexpr uint32_t kBatchSize = 128;
  const OracleStream oracle =
      BuildOracle(options, kBatches, kBatchSize, /*universe=*/128,
                  /*num_probes=*/8);
  ShardSet set(options);
  const uint64_t total_weight =
      static_cast<uint64_t>(kBatches) * kBatchSize;

  std::atomic<bool> done{false};
  auto reader = [&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<TopKEntry> top = set.TopK(16);
      EXPECT_LE(top.size(), 16u);
      for (size_t i = 0; i < top.size(); ++i) {
        // The clamp under test: exact_hits = new_count - old_count must
        // never wrap, and a validated filter snapshot can never report
        // more exact hits than its estimate.
        EXPECT_LE(top[i].exact_hits, top[i].estimate);
        // All tuple weights are 1, and a filter entry's new_count is at
        // most the sketch estimate at adoption plus its filter-era hits
        // — bounded by the whole stream's weight.
        EXPECT_LE(top[i].estimate, total_weight);
        if (i > 0) {
          EXPECT_LE(top[i].estimate, top[i - 1].estimate);
        }
      }
    }
  };
  std::thread r1(reader);
  for (const auto& batch : oracle.batches) set.Ingest(batch);
  set.Drain();
  done.store(true, std::memory_order_release);
  r1.join();

  // Quiescent: the merged report equals the union of the per-shard
  // reference filters, sorted by descending estimate.
  std::vector<TopKEntry> top = set.TopK(64);
  for (const TopKEntry& e : top) {
    const uint32_t s = ShardOf(e.key, options.num_shards);
    EXPECT_EQ(e.estimate, set.Estimate(e.key));
    EXPECT_LE(e.exact_hits, e.estimate);
    (void)s;
  }
}

}  // namespace
}  // namespace net
}  // namespace asketch
