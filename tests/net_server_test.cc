// End-to-end tests for the asketchd serving core: lifecycle, HELLO
// negotiation over the wire (including mismatch and hello-required
// rejection), single-client determinism against an in-process ShardSet
// oracle, concurrent-client conservation, garbage-resilience, overload
// degradation, and snapshot/recover bit-identity.

#include "src/net/server.h"

#include <filesystem>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/serialize.h"
#include "src/common/snapshot.h"
#include "src/net/client.h"
#include "src/net/shard_set.h"
#include "src/workload/stream_generator.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define ASKETCH_NET_TESTS 1
#else
#define ASKETCH_NET_TESTS 0
#endif

namespace asketch {
namespace net {
namespace {

#if ASKETCH_NET_TESTS

namespace fs = std::filesystem;

ServerOptions SmallServer() {
  ServerOptions options;
  options.shards.num_shards = 4;
  options.shards.shard_config.total_bytes = 32 * 1024;
  return options;
}

std::vector<Tuple> TestStream(uint64_t n, uint64_t seed = 7) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = n / 4 + 16;
  spec.seed = seed;
  return GenerateStream(spec);
}

/// A raw connection that can speak arbitrary bytes — for the handshake
/// and garbage tests the Client class is too well-behaved for.
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until one frame arrives (or the peer closes → nullopt).
  std::optional<Frame> ReadFrame() {
    uint8_t buffer[4096];
    for (;;) {
      if (auto frame = decoder_.Next()) return frame;
      if (decoder_.corrupt()) return std::nullopt;
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return std::nullopt;
      decoder_.Feed(buffer, static_cast<size_t>(n));
    }
  }

  /// True when the server closed the connection.
  bool WaitClosed() {
    uint8_t buffer[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) return true;
      if (n < 0) return false;
      // drain any pending frames
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(NetServer, StartStopIdempotent) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  EXPECT_GT(server.port(), 0);
  EXPECT_NE(server.Start(), std::nullopt);  // double start refused
  server.Stop();
  server.Stop();  // idempotent
}

TEST(NetServer, HelloNegotiation) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  EXPECT_EQ(client.negotiated_version(), kProtocolVersionMax);
  EXPECT_EQ(client.server_shards(), 4u);
}

TEST(NetServer, HelloVersionMismatch) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send(EncodeHelloRequest(
      HelloRequest{kProtocolMagic, kProtocolVersionMax + 1,
                   kProtocolVersionMax + 2})));
  const auto reply = conn.ReadFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, NetStatus::kVersionMismatch);
  EXPECT_TRUE(conn.WaitClosed());
}

TEST(NetServer, OpcodeBeforeHelloRejected) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  RawConn conn(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn.Send(EncodeStatsRequest()));
  const auto reply = conn.ReadFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, NetStatus::kHelloRequired);
  EXPECT_TRUE(conn.WaitClosed());
}

TEST(NetServer, GarbageStreamDropsConnectionButServerSurvives) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  {
    RawConn conn(server.port());
    ASSERT_TRUE(conn.ok());
    // A lying length prefix (beyond the cap) poisons the stream.
    std::vector<uint8_t> garbage(64, 0xff);
    ASSERT_TRUE(conn.Send(garbage));
    EXPECT_TRUE(conn.WaitClosed());
  }
  // The server keeps serving fresh connections.
  Client client;
  EXPECT_EQ(client.Connect({.port = server.port()}), std::nullopt);
}

// The wire path must be a pure transport: a server-fed ShardSet and an
// identically configured in-process oracle fed the same stream must end
// bit-identical (equal serialized digests), with equal estimates and
// TOPK reports.
TEST(NetServer, SingleClientMatchesInProcessOracle) {
  const ServerOptions options = SmallServer();
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  ShardSet oracle(options.shards);

  const auto tuples = TestStream(50'000);
  oracle.Ingest(tuples);
  oracle.Drain();

  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  for (size_t offset = 0; offset < tuples.size(); offset += 1000) {
    const size_t n = std::min<size_t>(1000, tuples.size() - offset);
    ASSERT_EQ(client.Update(std::span<const Tuple>(
                  tuples.data() + offset, n)),
              std::nullopt);
  }
  ASSERT_EQ(client.Flush(), std::nullopt);
  EXPECT_EQ(client.last_ack().received_tuples, tuples.size());
  EXPECT_EQ(client.last_ack().shed_weight, 0u);

  StateDigest server_digest;
  ASSERT_EQ(client.Digest(&server_digest), std::nullopt);
  StateDigest oracle_digest;
  oracle.SerializeState(&oracle_digest);
  EXPECT_EQ(server_digest.digest, oracle_digest.digest);
  EXPECT_EQ(server_digest.ingested, oracle_digest.ingested);

  // Spot-check point queries and the merged TOPK over the wire.
  std::vector<item_t> keys;
  for (size_t i = 0; i < tuples.size(); i += 997) {
    keys.push_back(tuples[i].key);
  }
  std::vector<uint64_t> estimates;
  ASSERT_EQ(client.QueryBatch(keys, &estimates), std::nullopt);
  ASSERT_EQ(estimates.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(estimates[i], oracle.Estimate(keys[i]));
  }
  std::vector<TopKEntry> wire_topk;
  ASSERT_EQ(client.TopK(16, &wire_topk), std::nullopt);
  const auto oracle_topk = oracle.TopK(16);
  ASSERT_EQ(wire_topk.size(), oracle_topk.size());
  for (size_t i = 0; i < wire_topk.size(); ++i) {
    EXPECT_EQ(wire_topk[i].key, oracle_topk[i].key);
    EXPECT_EQ(wire_topk[i].estimate, oracle_topk[i].estimate);
  }
}

// Concurrent clients: total ingested tuples are conserved and every
// sampled estimate keeps the one-sided guarantee against an exact
// counter of the union stream.
TEST(NetServer, ConcurrentClientsConserveAndStayOneSided) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  constexpr int kClients = 4;
  constexpr uint64_t kPerClient = 20'000;
  std::vector<std::vector<Tuple>> streams;
  for (int c = 0; c < kClients; ++c) {
    streams.push_back(TestStream(kPerClient, /*seed=*/100 + c));
  }
  std::vector<std::thread> threads;
  std::vector<std::string> errors(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (auto error = client.Connect({.port = server.port()})) {
        errors[c] = *error;
        return;
      }
      const auto& stream = streams[c];
      for (size_t offset = 0; offset < stream.size(); offset += 500) {
        const size_t n = std::min<size_t>(500, stream.size() - offset);
        if (auto error = client.Update(std::span<const Tuple>(
                stream.data() + offset, n))) {
          errors[c] = *error;
          return;
        }
      }
      if (auto error = client.Flush()) errors[c] = *error;
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) EXPECT_EQ(error, "");

  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  StateDigest barrier;
  ASSERT_EQ(client.Digest(&barrier), std::nullopt);  // drains queues
  EXPECT_EQ(barrier.ingested, kClients * kPerClient);

  WireStats stats;
  ASSERT_EQ(client.Stats(&stats), std::nullopt);
  EXPECT_EQ(stats.ingested, kClients * kPerClient);
  EXPECT_EQ(stats.shed_weight, 0u);
  // Unit weights: filter + sketch shares must add up to the stream.
  EXPECT_EQ(stats.filtered_weight + stats.sketch_weight,
            kClients * kPerClient);

  std::unordered_map<item_t, uint64_t> exact;
  for (const auto& stream : streams) {
    for (const Tuple& t : stream) exact[t.key] += t.value;
  }
  std::vector<item_t> keys;
  for (const auto& [key, count] : exact) {
    keys.push_back(key);
    if (keys.size() == 2048) break;
  }
  std::vector<uint64_t> estimates;
  ASSERT_EQ(client.QueryBatch(keys, &estimates), std::nullopt);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(estimates[i], exact[keys[i]])
        << "one-sided guarantee violated for key " << keys[i];
  }
}

TEST(NetServer, SnapshotRecoverBitIdentical) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "asketchd_recover_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string prefix = (dir / "ckpt").string();

  ServerOptions options = SmallServer();
  options.snapshot_prefix = prefix;
  StateDigest saved;
  {
    Server server(options);
    ASSERT_EQ(server.Start(), std::nullopt);
    Client client;
    ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
    const auto tuples = TestStream(30'000);
    ASSERT_EQ(client.Update(tuples), std::nullopt);
    ASSERT_EQ(client.Flush(), std::nullopt);
    ASSERT_EQ(client.Snapshot(&saved), std::nullopt);
    EXPECT_GT(saved.generation, 0u);
    EXPECT_EQ(saved.ingested, 30'000u);
    // The snapshot re-adopts the serialized form: the live digest now
    // equals the saved one.
    StateDigest live;
    ASSERT_EQ(client.Digest(&live), std::nullopt);
    EXPECT_EQ(live.digest, saved.digest);
    server.Stop();
  }
  {
    ServerOptions recover_options = options;
    recover_options.recover = true;
    Server server(recover_options);
    ASSERT_EQ(server.Start(), std::nullopt);
    ASSERT_TRUE(server.recovered().has_value());
    EXPECT_EQ(server.recovered()->digest, saved.digest);
    EXPECT_EQ(server.recovered()->ingested, saved.ingested);
    Client client;
    ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
    StateDigest recovered;
    ASSERT_EQ(client.Digest(&recovered), std::nullopt);
    EXPECT_EQ(recovered.digest, saved.digest);
    EXPECT_EQ(recovered.ingested, saved.ingested);
  }
  fs::remove_all(dir);
}

// The salsa backend must serve the full query surface: point queries,
// batch queries, and the merged TOPK, all one-sided against an exact
// counter of the ingested stream.
TEST(NetServer, SalsaBackendServesQueriesAndTopK) {
  ServerOptions options = SmallServer();
  options.shards.backend = SketchBackend::kSalsa;
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  ShardSet oracle(options.shards);

  const auto tuples = TestStream(50'000);
  oracle.Ingest(tuples);
  oracle.Drain();

  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  ASSERT_EQ(client.Update(tuples), std::nullopt);
  ASSERT_EQ(client.Flush(), std::nullopt);

  StateDigest server_digest;
  ASSERT_EQ(client.Digest(&server_digest), std::nullopt);
  StateDigest oracle_digest;
  oracle.SerializeState(&oracle_digest);
  EXPECT_EQ(server_digest.digest, oracle_digest.digest);

  std::unordered_map<item_t, uint64_t> exact;
  for (const Tuple& t : tuples) exact[t.key] += t.value;
  std::vector<item_t> keys;
  std::vector<uint64_t> estimates;
  for (const auto& [key, count] : exact) keys.push_back(key);
  ASSERT_EQ(client.QueryBatch(keys, &estimates), std::nullopt);
  ASSERT_EQ(estimates.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(estimates[i], exact[keys[i]]) << "key " << keys[i];
    EXPECT_EQ(estimates[i], oracle.Estimate(keys[i]));
  }
  std::vector<TopKEntry> wire_topk;
  ASSERT_EQ(client.TopK(16, &wire_topk), std::nullopt);
  const auto oracle_topk = oracle.TopK(16);
  ASSERT_EQ(wire_topk.size(), oracle_topk.size());
  for (size_t i = 0; i < wire_topk.size(); ++i) {
    EXPECT_EQ(wire_topk[i].key, oracle_topk[i].key);
    EXPECT_EQ(wire_topk[i].estimate, oracle_topk[i].estimate);
  }
}

TEST(NetServer, SalsaBackendSnapshotRecoverBitIdentical) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "asketchd_salsa_recover_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string prefix = (dir / "ckpt").string();

  ServerOptions options = SmallServer();
  options.shards.backend = SketchBackend::kSalsa;
  options.snapshot_prefix = prefix;
  StateDigest saved;
  {
    Server server(options);
    ASSERT_EQ(server.Start(), std::nullopt);
    Client client;
    ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
    ASSERT_EQ(client.Update(TestStream(30'000)), std::nullopt);
    ASSERT_EQ(client.Flush(), std::nullopt);
    ASSERT_EQ(client.Snapshot(&saved), std::nullopt);
    server.Stop();
  }
  {
    ServerOptions recover_options = options;
    recover_options.recover = true;
    Server server(recover_options);
    ASSERT_EQ(server.Start(), std::nullopt);
    ASSERT_TRUE(server.recovered().has_value());
    EXPECT_EQ(server.recovered()->digest, saved.digest);
    EXPECT_EQ(server.recovered()->ingested, saved.ingested);
  }
  {
    // A salsa checkpoint must not restore under the countmin backend:
    // the sketch magics differ, so recovery fails hard instead of
    // silently misreading counters.
    ServerOptions cross_options = options;
    cross_options.recover = true;
    cross_options.shards.backend = SketchBackend::kCountMin;
    Server server(cross_options);
    EXPECT_NE(server.Start(), std::nullopt);
  }
  fs::remove_all(dir);
}

TEST(NetServer, RecoverWithoutSnapshotFails) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "asketchd_recover_empty";
  fs::remove_all(dir);
  fs::create_directories(dir);
  ServerOptions options = SmallServer();
  options.snapshot_prefix = (dir / "ckpt").string();
  options.recover = true;
  Server server(options);
  EXPECT_NE(server.Start(), std::nullopt);
  fs::remove_all(dir);
}

TEST(NetServer, SnapshotWithoutPrefixAnswersError) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  StateDigest digest;
  const auto error = client.Snapshot(&digest);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("snapshot_failed"), std::string::npos);
}

TEST(ShardSetTest, OverloadShedsWhenStalledAndQueuesBounded) {
  ShardSetOptions options;
  options.num_shards = 2;
  options.shard_config.total_bytes = 32 * 1024;
  options.max_queue_batches = 2;
  options.max_enqueue_wait_ms = 1;
  options.overload = OverloadPolicy::kShed;
  ShardSet shards(options);
  shards.StallWorkersForTesting(true);

  const auto tuples = TestStream(10'000);
  uint64_t shed = 0;
  for (int round = 0; round < 8; ++round) {
    shed += shards.Ingest(tuples);
  }
  EXPECT_GT(shed, 0u) << "stalled bounded queues must shed";

  shards.StallWorkersForTesting(false);
  shards.Drain();
  const WireStats stats = shards.GetStats();
  EXPECT_EQ(stats.shed_weight, shed);
  // Conservation: everything not shed was applied.
  uint64_t total_weight = 0;
  for (const Tuple& t : tuples) total_weight += t.value;
  EXPECT_EQ(stats.filtered_weight + stats.sketch_weight,
            8 * total_weight - shed);
}

TEST(ShardSetTest, OverloadInlineAppliesEverything) {
  ShardSetOptions options;
  options.num_shards = 2;
  options.shard_config.total_bytes = 32 * 1024;
  options.max_queue_batches = 2;
  options.max_enqueue_wait_ms = 1;
  options.overload = OverloadPolicy::kInlineApply;
  ShardSet shards(options);
  shards.StallWorkersForTesting(true);

  const auto tuples = TestStream(10'000);
  uint64_t shed = 0;
  for (int round = 0; round < 4; ++round) {
    shed += shards.Ingest(tuples);
  }
  EXPECT_EQ(shed, 0u);
  shards.StallWorkersForTesting(false);
  shards.Drain();
  const WireStats stats = shards.GetStats();
  EXPECT_EQ(stats.ingested, 4 * tuples.size());
  EXPECT_GT(stats.inline_applied, 0u)
      << "stalled bounded queues must degrade to inline application";
}

TEST(ShardSetTest, ShardRoutingIsDisjointAndTotal) {
  // Every key maps to exactly one shard, and estimates route there.
  ShardSetOptions options;
  options.num_shards = 4;
  options.shard_config.total_bytes = 32 * 1024;
  ShardSet shards(options);
  const std::vector<Tuple> tuples{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  shards.Ingest(tuples);
  shards.Drain();
  for (const Tuple& t : tuples) {
    EXPECT_GE(shards.Estimate(t.key), t.value);
  }
  const WireStats stats = shards.GetStats();
  EXPECT_EQ(stats.ingested, tuples.size());
}

// Builds a serialized ShardSet payload ("SRD1") whose shard owning
// `bad_key` carries a filter entry with new_count < old_count. Live
// streams cannot produce that state — Appendix A deletions equalize the
// counters instead of crossing them — but RestoreState accepts any
// payload that deserializes (snapshots written by external tools or
// older builds are not revalidated), and TOPK used to compute
// exact_hits = new_count - old_count with unsigned arithmetic, wrapping
// to ~4.29e9 for such an entry.
std::vector<uint8_t> PayloadWithUnderflowedEntry(
    const ShardSetOptions& options, item_t bad_key, count_t bad_new,
    count_t bad_old) {
  BinaryWriter writer;
  writer.PutU32(kShardSetPayloadType);  // "SRD1"
  writer.PutU32(options.num_shards);
  writer.PutU64(0);  // shed_weight
  writer.PutU64(0);  // inline_applied
  const uint32_t bad_shard = ShardOf(bad_key, options.num_shards);
  for (uint32_t s = 0; s < options.num_shards; ++s) {
    ServingSketch crafted =
        MakeASketchCountMin<RelaxedHeapFilter>(options.shard_config);
    // Some ordinary traffic, including an Appendix A deletion — which
    // leaves new_count == old_count, never below.
    crafted.Update(bad_key + 1, 6);
    crafted.Update(bad_key + 1, -2);
    if (s == bad_shard) {
      crafted.filter().Insert(bad_key, bad_new, bad_old);
    }
    writer.PutU64(10);  // applied_tuples
    if (!crafted.SerializeTo(writer)) return {};
  }
  return writer.buffer();
}

TEST(ShardSetTest, TopKClampsUnderflowedRestoredCounts) {
  ShardSetOptions options;
  options.num_shards = 2;
  options.shard_config.total_bytes = 32 * 1024;
  const item_t bad_key = 99;
  const std::vector<uint8_t> payload =
      PayloadWithUnderflowedEntry(options, bad_key, /*bad_new=*/5,
                                  /*bad_old=*/9);
  ASSERT_FALSE(payload.empty());
  ShardSet set(options);
  ASSERT_EQ(set.RestoreState(payload), std::nullopt);
  bool found = false;
  for (const TopKEntry& e : set.TopK(16)) {
    EXPECT_LE(e.exact_hits, e.estimate) << "key " << e.key;
    if (e.key == bad_key) {
      found = true;
      EXPECT_EQ(e.estimate, 5u);
      // The regression: unsigned 5 - 9 wrapped to 4294967292 before the
      // clamp; an entry with no filter-era hits must report zero.
      EXPECT_EQ(e.exact_hits, 0u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(NetServer, TopKClampsUnderflowOverWireAfterRecover) {
  const fs::path dir =
      fs::path(testing::TempDir()) / "asketchd_underflow_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string prefix = (dir / "ckpt").string();

  ServerOptions options = SmallServer();
  const item_t bad_key = 424242;
  const std::vector<uint8_t> payload =
      PayloadWithUnderflowedEntry(options.shards, bad_key, /*bad_new=*/7,
                                  /*bad_old=*/11);
  ASSERT_FALSE(payload.empty());
  SnapshotStore store(prefix, options.snapshot_retain);
  ASSERT_EQ(store.Save(kShardSetPayloadType, payload), std::nullopt);

  options.snapshot_prefix = prefix;
  options.recover = true;
  Server server(options);
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  std::vector<TopKEntry> top;
  ASSERT_EQ(client.TopK(32, &top), std::nullopt);
  bool found = false;
  for (const TopKEntry& e : top) {
    EXPECT_LE(e.exact_hits, e.estimate) << "key " << e.key;
    if (e.key == bad_key) {
      found = true;
      EXPECT_EQ(e.estimate, 7u);
      EXPECT_EQ(e.exact_hits, 0u);
    }
  }
  EXPECT_TRUE(found);
  // The underflowed entry still answers point queries with its exact
  // filter count.
  uint64_t estimate = 0;
  ASSERT_EQ(client.Query(bad_key, &estimate), std::nullopt);
  EXPECT_EQ(estimate, 7u);
  server.Stop();
  fs::remove_all(dir);
}

TEST(NetServer, QueryBatchMatchesPointQueries) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  Client client;
  ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt);
  const auto tuples = TestStream(20'000);
  ASSERT_EQ(client.Update(tuples), std::nullopt);
  ASSERT_EQ(client.Flush(), std::nullopt);
  // Queries read the *applied* state and UPDATE acks only cover the
  // enqueue; DIGEST drains every shard queue, making the whole stream
  // visible before the comparisons below.
  StateDigest digest;
  ASSERT_EQ(client.Digest(&digest), std::nullopt);

  // Mixed batch: seen keys, unseen keys, and duplicates — the grouped
  // per-shard fanout must answer each position exactly like a point
  // query, in request order.
  std::vector<item_t> keys;
  for (uint32_t i = 0; i < 200; ++i) keys.push_back(tuples[i * 7].key);
  for (uint32_t i = 0; i < 16; ++i) keys.push_back(3'000'000'000u + i);
  keys.push_back(keys.front());
  std::vector<uint64_t> batched;
  ASSERT_EQ(client.QueryBatch(keys, &batched), std::nullopt);
  ASSERT_EQ(batched.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    uint64_t single = 0;
    ASSERT_EQ(client.Query(keys[i], &single), std::nullopt);
    EXPECT_EQ(batched[i], single) << "position " << i;
  }
  // An empty batch is a valid request with an empty answer.
  std::vector<uint64_t> empty;
  ASSERT_EQ(client.QueryBatch({}, &empty), std::nullopt);
  EXPECT_TRUE(empty.empty());
  server.Stop();
}

#endif  // ASKETCH_NET_TESTS

}  // namespace
}  // namespace net
}  // namespace asketch
