// Wire-level fuzzing of the server's frame handling: seeded schedules
// of truncated, oversized, and garbage frames thrown at a live Server
// over raw sockets. The server must never die, must close only the
// offending connection, and must count every rejection — and the same
// seed must produce the same schedule (replayability is what makes a
// fuzz failure debuggable).

#include "src/net/server.h"

#include <vector>

#include "gtest/gtest.h"
#include "src/common/random.h"
#include "src/net/client.h"
#include "src/net/net_metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define ASKETCH_NET_TESTS 1
#else
#define ASKETCH_NET_TESTS 0
#endif

namespace asketch {
namespace net {
namespace {

#if ASKETCH_NET_TESTS

ServerOptions SmallServer() {
  ServerOptions options;
  options.shards.num_shards = 2;
  options.shards.shard_config.total_bytes = 32 * 1024;
  return options;
}

/// Raw byte-level connection (the Client class refuses to misbehave).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::vector<uint8_t>& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent,
#ifdef MSG_NOSIGNAL
                               MSG_NOSIGNAL
#else
                               0
#endif
      );
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Drains until the server closes the connection (or errors).
  bool WaitClosed() {
    uint8_t buffer[512];
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) return true;
      if (n < 0) return errno != EINTR;
    }
  }

 private:
  int fd_ = -1;
};

/// One seeded adversarial byte blob. Three attack shapes, chosen by the
/// schedule: pure garbage (random bytes, usually an insane length
/// prefix), an oversized frame (honest header, length beyond the 1 MiB
/// cap), and a truncated frame (valid header promising more payload
/// than is ever sent, followed by EOF).
enum class Attack { kGarbage, kOversized, kTruncated };

std::vector<uint8_t> MakeAttackBytes(Attack attack, Rng& rng) {
  std::vector<uint8_t> bytes;
  switch (attack) {
    case Attack::kGarbage: {
      const size_t n = 8 + rng.NextBounded(120);
      for (size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      // Pin the length prefix's top bit so the declared length always
      // exceeds the cap: the stream must poison rather than leave the
      // server waiting for random gigabytes that never come.
      bytes[3] |= 0x80;
      break;
    }
    case Attack::kOversized: {
      // Little-endian length prefix beyond kMaxFramePayloadBytes.
      const uint32_t length =
          kMaxFramePayloadBytes + 1 +
          static_cast<uint32_t>(rng.NextBounded(1u << 20));
      for (int i = 0; i < 4; ++i) {
        bytes.push_back(static_cast<uint8_t>(length >> (8 * i)));
      }
      bytes.push_back(0x02);  // opcode
      bytes.push_back(0x00);  // flags
      bytes.push_back(0x00);  // status
      bytes.push_back(0x00);
      break;
    }
    case Attack::kTruncated: {
      const uint32_t promised =
          64 + static_cast<uint32_t>(rng.NextBounded(512));
      for (int i = 0; i < 4; ++i) {
        bytes.push_back(static_cast<uint8_t>(promised >> (8 * i)));
      }
      bytes.push_back(0x02);
      bytes.push_back(0x00);
      bytes.push_back(0x00);
      bytes.push_back(0x00);
      // Deliver only a fraction of the promised payload, then EOF.
      const size_t delivered = rng.NextBounded(promised / 2);
      for (size_t i = 0; i < delivered; ++i) {
        bytes.push_back(static_cast<uint8_t>(rng.NextU64()));
      }
      break;
    }
  }
  return bytes;
}

/// Runs one full seeded schedule of `rounds` attacks against `port`.
/// Returns how many attack connections the server visibly closed.
uint64_t RunSchedule(uint16_t port, uint64_t seed, int rounds) {
  Rng rng(seed);
  uint64_t closed = 0;
  for (int round = 0; round < rounds; ++round) {
    const Attack attack = static_cast<Attack>(rng.NextBounded(3));
    const std::vector<uint8_t> bytes = MakeAttackBytes(attack, rng);
    RawConn conn(port);
    if (!conn.ok()) continue;
    conn.Send(bytes);
    if (attack == Attack::kTruncated) {
      // The server is entitled to wait forever for the promised bytes
      // (that is the idle deadline's job, tested elsewhere); just
      // abandon the connection.
      ++closed;
      continue;
    }
    if (conn.WaitClosed()) ++closed;
  }
  return closed;
}

TEST(NetWireFuzz, ServerSurvivesSeededAttackSchedules) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);
  NetMetrics& metrics = NetMetrics::Get();

  const uint64_t errors_before = metrics.frame_errors_total.Value();
  const uint64_t corrupt_before = metrics.corrupt_streams.Value();

  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RunSchedule(server.port(), seed, /*rounds=*/16);
    // After every schedule the server still serves well-behaved
    // clients: only the offending connections died.
    Client client;
    ASSERT_EQ(client.Connect({.port = server.port()}), std::nullopt)
        << "server unreachable after fuzz schedule seed=" << seed;
    const std::vector<Tuple> tuples{{1, 2}, {3, 4}};
    ASSERT_EQ(client.Update(tuples), std::nullopt);
    ASSERT_EQ(client.Flush(), std::nullopt);
    EXPECT_EQ(client.last_ack().received_tuples, 2u);
  }

  // Garbage and oversized frames poison their streams; every poisoned
  // stream is a counted rejection.
  EXPECT_GT(metrics.frame_errors_total.Value(), errors_before);
  EXPECT_GT(metrics.corrupt_streams.Value(), corrupt_before);
}

TEST(NetWireFuzz, SameSeedSameSchedule) {
  // Replayability: generating the byte schedule twice from one seed
  // yields identical bytes (this is what lets a fuzz failure be rerun).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng a(seed);
    Rng b(seed);
    for (int round = 0; round < 32; ++round) {
      const Attack attack_a = static_cast<Attack>(a.NextBounded(3));
      const Attack attack_b = static_cast<Attack>(b.NextBounded(3));
      ASSERT_EQ(attack_a, attack_b);
      EXPECT_EQ(MakeAttackBytes(attack_a, a), MakeAttackBytes(attack_b, b))
          << "seed " << seed << " round " << round;
    }
  }
}

TEST(NetWireFuzz, OffenderClosedOthersUnaffected) {
  Server server(SmallServer());
  ASSERT_EQ(server.Start(), std::nullopt);

  // A healthy session stays open across a poisoned neighbor.
  Client healthy;
  ASSERT_EQ(healthy.Connect({.port = server.port()}), std::nullopt);
  const std::vector<Tuple> first{{10, 5}};
  ASSERT_EQ(healthy.Update(first), std::nullopt);
  ASSERT_EQ(healthy.Flush(), std::nullopt);

  {
    RawConn offender(server.port());
    ASSERT_TRUE(offender.ok());
    Rng rng(99);
    ASSERT_TRUE(offender.Send(MakeAttackBytes(Attack::kGarbage, rng)));
    EXPECT_TRUE(offender.WaitClosed());
  }

  const std::vector<Tuple> second{{11, 6}};
  ASSERT_EQ(healthy.Update(second), std::nullopt);
  ASSERT_EQ(healthy.Flush(), std::nullopt);
  EXPECT_EQ(healthy.last_ack().received_tuples, 2u);
  uint64_t estimate = 0;
  ASSERT_EQ(healthy.Query(10, &estimate), std::nullopt);
  EXPECT_GE(estimate, 5u);
}

#endif  // ASKETCH_NET_TESTS

}  // namespace
}  // namespace net
}  // namespace asketch
