// Exporter tests: the Prometheus text rendering is pinned to a golden
// file (tests/golden/exposition.prom) byte-for-byte, and the JSON dump
// must satisfy a strict JSON grammar check. Regenerate the golden after
// an intentional format change with
//   ASKETCH_REGENERATE_GOLDEN=1 ./obs_export_test

#include "src/obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "tests/common/json_checker.h"

namespace asketch {
namespace obs {
namespace {

/// A deterministic snapshot exercising every exposition feature: bare and
/// labelled counters sharing a family, negative and fractional gauges,
/// histograms with zeros, overflow, and empty-bucket truncation.
MetricsSnapshot GoldenSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("asketch_requests_total", "handler=\"/metrics\"")
      .Add(3);
  registry.GetCounter("asketch_requests_total", "handler=\"/stats\"")
      .Add(1);
  registry.GetCounter("asketch_tuples_total").Add(123456789);
  registry.GetGauge("asketch_queue_depth").Set(-3);
  registry.RegisterCallbackGauge("asketch_selectivity", "",
                                 [] { return 0.25; });
  Histogram& latency = registry.GetHistogram("asketch_update_batch_ns");
  latency.Record(0);
  latency.Record(1);
  latency.Record(900);
  latency.Record(900);
  latency.Record(70000);
  Histogram& overflow = registry.GetHistogram("asketch_huge_ns");
  overflow.Record(uint64_t{1} << 60);  // overflow bucket only
  return registry.Collect();
}

std::string GoldenPath() {
  return std::string(ASKETCH_TEST_SRCDIR) + "/golden/exposition.prom";
}

TEST(PrometheusExportTest, MatchesGoldenFile) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  const std::string rendered = RenderPrometheusText(GoldenSnapshot());
  if (std::getenv("ASKETCH_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    out << rendered;
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    GTEST_SKIP() << "golden regenerated at " << GoldenPath();
  }
  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath();
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(rendered, expected.str())
      << "Prometheus exposition drifted from the golden file; if the "
         "change is intentional, regenerate with "
         "ASKETCH_REGENERATE_GOLDEN=1";
}

TEST(PrometheusExportTest, SharedFamilyEmitsOneTypeLine) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  const std::string rendered = RenderPrometheusText(GoldenSnapshot());
  size_t count = 0;
  for (size_t pos = rendered.find("# TYPE asketch_requests_total");
       pos != std::string::npos;
       pos = rendered.find("# TYPE asketch_requests_total", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(PrometheusExportTest, HistogramSeriesIsCumulativeAndClosed) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  histogram.Record(2);
  histogram.Record(3);
  histogram.Record(5);
  const std::string rendered = RenderPrometheusText(registry.Collect());
  // Bucket of 2..3 holds 2; the cumulative series reaches 3 by le="7";
  // +Inf always closes with the total count.
  EXPECT_NE(rendered.find("h_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(rendered.find("h_bucket{le=\"7\"} 3\n"), std::string::npos);
  EXPECT_NE(rendered.find("h_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(rendered.find("h_sum 10\n"), std::string::npos);
  EXPECT_NE(rendered.find("h_count 3\n"), std::string::npos);
}

TEST(JsonExportTest, RendersStrictlyValidJson) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  const std::string json = RenderMetricsJson(GoldenSnapshot());
  EXPECT_TRUE(testing_support::JsonChecker::Valid(json)) << json;
  // Spot-check content: percentile fields and the overflow bucket's null
  // upper bound survive rendering.
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":null,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"asketch_tuples_total\",\"value\":123456789"),
            std::string::npos);
}

TEST(JsonExportTest, EmptySnapshotIsValidJson) {
  const std::string json = RenderMetricsJson(MetricsSnapshot{});
  EXPECT_TRUE(testing_support::JsonChecker::Valid(json)) << json;
  EXPECT_EQ(json, "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
}

TEST(JsonExportTest, EscapesControlAndQuoteCharacters) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"weird\"name\\\n\x01", "", 1});
  const std::string json = RenderMetricsJson(snapshot);
  EXPECT_TRUE(testing_support::JsonChecker::Valid(json)) << json;
}

}  // namespace
}  // namespace obs
}  // namespace asketch
