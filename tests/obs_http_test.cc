// Tests for the metrics HTTP exporter: a raw-socket client fetches
// registered paths and checks status lines, content types, bodies, and
// 404 handling. Skips when the sandbox forbids loopback sockets.

#include "src/obs/http_exporter.h"

#include <string>

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define ASKETCH_HTTP_TEST_SUPPORTED 1
#endif

namespace asketch {
namespace obs {
namespace {

#ifdef ASKETCH_HTTP_TEST_SUPPORTED

/// Minimal HTTP client: sends `request` to 127.0.0.1:port and returns the
/// full response (headers + body), or "" on any socket error.
std::string Fetch(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string response;
  if (::send(fd, request.data(), request.size(), 0) ==
      static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t got;
    while ((got = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
      response.append(buffer, static_cast<size_t>(got));
    }
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

class HttpExporterTest : public testing::Test {
 protected:
  void SetUp() override {
    server_.AddHandler("/metrics", "text/plain; version=0.0.4",
                       [] { return std::string("metric_total 1\n"); });
    server_.AddHandler("/metrics.json", "application/json",
                       [this] { return std::string("{\"hits\":") +
                                    std::to_string(++handler_calls_) + "}"; });
    if (!server_.Start(0)) {
      GTEST_SKIP() << "cannot bind a loopback socket in this environment";
    }
  }
  void TearDown() override { server_.Stop(); }

  MetricsHttpServer server_;
  int handler_calls_ = 0;
};

TEST_F(HttpExporterTest, ServesRegisteredPathWithContentType) {
  const std::string response = Get(server_.port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << response;
  EXPECT_NE(response.find("metric_total 1\n"), std::string::npos);
  EXPECT_EQ(server_.requests(), 1u);
}

TEST_F(HttpExporterTest, HandlerRunsPerRequest) {
  EXPECT_NE(Get(server_.port(), "/metrics.json").find("{\"hits\":1}"),
            std::string::npos);
  EXPECT_NE(Get(server_.port(), "/metrics.json").find("{\"hits\":2}"),
            std::string::npos);
}

TEST_F(HttpExporterTest, UnknownPathReturns404) {
  const std::string response = Get(server_.port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos) << response;
}

TEST_F(HttpExporterTest, QueryStringIsStrippedFromPath) {
  const std::string response = Get(server_.port(), "/metrics?x=1");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
}

TEST_F(HttpExporterTest, NonGetMethodRejected) {
  const std::string response =
      Fetch(server_.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_EQ(response.find("200 OK"), std::string::npos) << response;
}

TEST_F(HttpExporterTest, EphemeralPortIsResolved) {
  EXPECT_NE(server_.port(), 0u);
}

TEST_F(HttpExporterTest, StopIsIdempotentAndRestartableInstanceNot) {
  server_.Stop();
  server_.Stop();
  EXPECT_EQ(Get(server_.port(), "/metrics"), "");
}

#else  // !ASKETCH_HTTP_TEST_SUPPORTED

TEST(HttpExporterTest, StartFailsGracefullyOffPosix) {
  MetricsHttpServer server;
  EXPECT_FALSE(server.Start(0));
}

#endif

}  // namespace
}  // namespace obs
}  // namespace asketch
