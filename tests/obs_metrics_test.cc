// Tests for the telemetry registry: counter exactness (single- and
// multi-threaded), gauge semantics, callback gauges, histogram bucket
// boundaries / overflow / percentiles / merging, and Collect() ordering.

#include "src/obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/obs/core_metrics.h"

namespace asketch {
namespace obs {
namespace {

// Private registries keep tests independent of the process-global metric
// state (library instrumentation writes to Global()).

TEST(HistogramBucketTest, IndexMatchesBitWidth) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(1), 1u);
  EXPECT_EQ(HistogramBucketIndex(2), 2u);
  EXPECT_EQ(HistogramBucketIndex(3), 2u);
  EXPECT_EQ(HistogramBucketIndex(4), 3u);
  EXPECT_EQ(HistogramBucketIndex(7), 3u);
  EXPECT_EQ(HistogramBucketIndex(8), 4u);
  // The last finite bucket holds [2^38, 2^39 - 1]; everything at or
  // beyond 2^39 overflows.
  const uint64_t last_finite = (uint64_t{1} << (kHistogramBuckets - 1)) - 1;
  EXPECT_EQ(HistogramBucketIndex(last_finite), kHistogramBuckets - 1);
  EXPECT_EQ(HistogramBucketIndex(last_finite + 1), kHistogramBuckets);
  EXPECT_EQ(HistogramBucketIndex(~uint64_t{0}), kHistogramBuckets);
}

TEST(HistogramBucketTest, UpperBoundsAreInclusive) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  for (uint32_t i = 1; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketUpperBound(i)), i);
    EXPECT_EQ(HistogramBucketIndex(HistogramBucketUpperBound(i) + 1), i + 1);
  }
}

TEST(HistogramTest, RecordsCountSumMaxAndBuckets) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(100);
  histogram.Record(100);
  const HistogramSample sample = histogram.Sample();
  EXPECT_EQ(sample.count, 4u);
  EXPECT_EQ(sample.sum, 201u);
  EXPECT_EQ(sample.max, 100u);
  EXPECT_EQ(sample.buckets[0], 1u);                          // the zero
  EXPECT_EQ(sample.buckets[1], 1u);                          // the one
  EXPECT_EQ(sample.buckets[HistogramBucketIndex(100)], 2u);  // the 100s
}

TEST(HistogramTest, OverflowBucketAndPercentiles) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  const uint64_t huge = uint64_t{1} << (kHistogramBuckets + 3);
  histogram.Record(huge);
  const HistogramSample sample = histogram.Sample();
  EXPECT_EQ(sample.buckets[kHistogramBuckets], 1u);
  EXPECT_EQ(sample.max, huge);
  // A quantile landing in the overflow bucket reports the observed max.
  EXPECT_EQ(sample.p99, static_cast<double>(huge));
}

TEST(HistogramTest, PercentilesFollowCumulativeCounts) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  // 90 small values in bucket [1], 10 large values in bucket of 1000.
  for (int i = 0; i < 90; ++i) histogram.Record(1);
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  const HistogramSample sample = histogram.Sample();
  EXPECT_EQ(sample.count, 100u);
  EXPECT_EQ(sample.p50, 1.0);
  // p99 lands among the 1000s: reported as that bucket's upper bound
  // capped at the observed max.
  EXPECT_EQ(sample.p99, 1000.0);
  // p90 rank is the boundary: the 91st value, i.e. the first 1000.
  EXPECT_EQ(sample.p90, 1000.0);
}

TEST(HistogramTest, PercentileCappedAtObservedMax) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& histogram = registry.GetHistogram("h");
  histogram.Record(513);  // bucket [512, 1023], upper bound 1023
  const HistogramSample sample = histogram.Sample();
  EXPECT_EQ(sample.p50, 513.0);
  EXPECT_EQ(sample.p99, 513.0);
}

TEST(HistogramTest, MergeCountsAddsForeignBuckets) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Histogram& a = registry.GetHistogram("a");
  Histogram& b = registry.GetHistogram("b");
  a.Record(5);
  b.Record(9);
  b.Record(1u << 20);
  const HistogramSample from = b.Sample();
  a.MergeCounts(from.buckets, from.sum, from.max);
  const HistogramSample merged = a.Sample();
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 5u + 9u + (1u << 20));
  EXPECT_EQ(merged.max, 1u << 20);
  EXPECT_EQ(merged.buckets[HistogramBucketIndex(5)], 1u);
  EXPECT_EQ(merged.buckets[HistogramBucketIndex(9)], 1u);
  EXPECT_EQ(merged.buckets[HistogramBucketIndex(1u << 20)], 1u);
}

TEST(CounterTest, SingleThreadedExactness) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, GetCounterReturnsSameInstanceByNameAndLabels) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("c", "x=\"1\"");
  Counter& b = registry.GetCounter("c", "x=\"1\"");
  Counter& other = registry.GetCounter("c", "x=\"2\"");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
  EXPECT_EQ(other.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Counter& weighted = registry.GetCounter("w");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &weighted] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        weighted.Add(3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Per-thread cells have a single writer each, so no increment can be
  // lost: totals are exact, not approximate.
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(weighted.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread * 3);
}

TEST(CounterTest, ValueVisibleWhileWritersRun) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  std::atomic<bool> stop{false};
  std::thread writer([&counter, &stop] {
    while (!stop.load(std::memory_order_relaxed)) counter.Increment();
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t now = counter.Value();
    EXPECT_GE(now, last);  // reader sees monotonic progress
    last = now;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_EQ(counter.Value(), counter.Value());
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("g");
  gauge.Set(10);
  gauge.Add(-12);
  EXPECT_EQ(gauge.Value(), -2);
}

TEST(CallbackGaugeTest, EvaluatedAtCollectTime) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  double live_value = 1.5;
  const uint64_t id = registry.RegisterCallbackGauge(
      "cb", "", [&live_value] { return live_value; });
  MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].name, "cb");
  EXPECT_EQ(snapshot.gauges[0].value, 1.5);
  live_value = 2.5;
  snapshot = registry.Collect();
  EXPECT_EQ(snapshot.gauges[0].value, 2.5);
  registry.UnregisterCallbackGauge(id);
  EXPECT_TRUE(registry.Collect().gauges.empty());
}

TEST(CallbackGaugeTest, CallbackMayReadCounters) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  // The documented pattern: a derived gauge computed from counters. This
  // exercises the callback-invokes-registry-lock path (no deadlock).
  MetricsRegistry registry;
  Counter& hits = registry.GetCounter("hits");
  Counter& misses = registry.GetCounter("misses");
  registry.RegisterCallbackGauge("ratio", "", [&hits, &misses] {
    const double total =
        static_cast<double>(hits.Value() + misses.Value());
    return total == 0 ? 0.0 : static_cast<double>(misses.Value()) / total;
  });
  hits.Add(3);
  misses.Add(1);
  const MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].value, 0.25);
}

TEST(RegistryTest, CollectSortsByNameThenLabels) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry registry;
  registry.GetCounter("b");
  registry.GetCounter("a", "z=\"2\"");
  registry.GetCounter("a", "z=\"1\"");
  registry.GetGauge("g");
  registry.GetHistogram("h");
  const MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 3u);
  EXPECT_EQ(snapshot.counters[0].name, "a");
  EXPECT_EQ(snapshot.counters[0].labels, "z=\"1\"");
  EXPECT_EQ(snapshot.counters[1].labels, "z=\"2\"");
  EXPECT_EQ(snapshot.counters[2].name, "b");
  EXPECT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(registry.MetricCount(), 5u);
}

TEST(IngestMetricsTest, RegistryMirrorsASketchStats) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  // Satellite contract of the stats unification: the per-instance
  // ASketchStats view and the global registry counters describe the same
  // events. The registry is cumulative across instances, so compare
  // before/after deltas.
  IngestMetrics& metrics = IngestMetrics::Get();
  const uint64_t filtered0 = metrics.filtered_weight.Value();
  const uint64_t sketch0 = metrics.sketch_weight.Value();
  const uint64_t updates0 = metrics.sketch_updates.Value();
  const uint64_t exchanges0 = metrics.exchanges.Value();
  const uint64_t writebacks0 = metrics.exchange_writebacks.Value();

  ASketchConfig config;
  config.total_bytes = 32 * 1024;
  config.filter_items = 8;
  auto sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  std::vector<Tuple> tuples;
  for (uint32_t i = 0; i < 5000; ++i) {
    tuples.push_back({i % 100, 1 + (i % 3)});
  }
  // Half through the batch path (flushes itself), half through scalar
  // Update (flushed by the explicit publish below).
  sketch.UpdateBatch(std::span<const Tuple>(tuples.data(), 2500));
  for (size_t i = 2500; i < tuples.size(); ++i) {
    sketch.Update(tuples[i].key, static_cast<delta_t>(tuples[i].value));
  }
  sketch.PublishTelemetry();

  const ASketchStats& stats = sketch.stats();
  EXPECT_EQ(metrics.filtered_weight.Value() - filtered0,
            stats.filtered_weight);
  EXPECT_EQ(metrics.sketch_weight.Value() - sketch0, stats.sketch_weight);
  EXPECT_EQ(metrics.sketch_updates.Value() - updates0,
            stats.sketch_updates);
  EXPECT_EQ(metrics.exchanges.Value() - exchanges0, stats.exchanges);
  EXPECT_EQ(metrics.exchange_writebacks.Value() - writebacks0,
            stats.exchange_writebacks);
  EXPECT_GT(stats.filtered_weight + stats.sketch_weight, 0u);
}

TEST(RegistryTest, ThreadChurnReusesBlocksAndKeepsTotals) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  // Counters written by short-lived threads must survive those threads.
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter =
      registry.GetCounter("asketch_test_thread_churn_total");
  const uint64_t before = counter.Value();
  for (int round = 0; round < 32; ++round) {
    std::thread t([&counter] { counter.Add(10); });
    t.join();
  }
  EXPECT_EQ(counter.Value(), before + 320u);
}

}  // namespace
}  // namespace obs
}  // namespace asketch
