// Tests for telemetry persistence (the "MTR1" record): round-trip into a
// fresh registry, additive restore on a warm registry, histogram bucket
// fidelity, and rejection of malformed records.

#include "src/obs/metrics_persist.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/serialize.h"
#include "src/obs/metrics.h"

namespace asketch {
namespace obs {
namespace {

std::vector<uint8_t> Serialize(const MetricsRegistry& registry) {
  BinaryWriter writer;
  EXPECT_TRUE(SerializeMetricsTo(registry, writer));
  return writer.buffer();
}

TEST(MetricsPersistTest, RoundTripIntoFreshRegistry) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry source;
  source.GetCounter("asketch_tuples_total").Add(1000);
  source.GetCounter("asketch_spmd_tuples_total", "worker=\"2\"").Add(77);
  Histogram& latency = source.GetHistogram("asketch_save_ns");
  latency.Record(100);
  latency.Record(5000);
  const std::vector<uint8_t> bytes = Serialize(source);

  MetricsRegistry restored;
  BinaryReader reader(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(restored, reader));
  EXPECT_EQ(restored.GetCounter("asketch_tuples_total").Value(), 1000u);
  EXPECT_EQ(
      restored.GetCounter("asketch_spmd_tuples_total", "worker=\"2\"")
          .Value(),
      77u);
  const HistogramSample sample =
      restored.GetHistogram("asketch_save_ns").Sample();
  EXPECT_EQ(sample.count, 2u);
  EXPECT_EQ(sample.sum, 5100u);
  EXPECT_EQ(sample.max, 5000u);
  EXPECT_EQ(sample.buckets[HistogramBucketIndex(100)], 1u);
  EXPECT_EQ(sample.buckets[HistogramBucketIndex(5000)], 1u);
}

TEST(MetricsPersistTest, RestoreIsAdditiveOnWarmRegistry) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry source;
  source.GetCounter("c").Add(10);
  source.GetHistogram("h").Record(4);
  const std::vector<uint8_t> bytes = Serialize(source);

  // The restoring process already observed some events of its own; the
  // checkpointed history merges on top instead of clobbering them.
  MetricsRegistry warm;
  warm.GetCounter("c").Add(5);
  warm.GetHistogram("h").Record(4);
  BinaryReader reader(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(warm, reader));
  EXPECT_EQ(warm.GetCounter("c").Value(), 15u);
  EXPECT_EQ(warm.GetHistogram("h").Sample().count, 2u);
}

TEST(MetricsPersistTest, GaugesAreNotPersisted) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry source;
  source.GetGauge("asketch_queue_depth").Set(42);
  source.GetCounter("kept").Add(1);
  const std::vector<uint8_t> bytes = Serialize(source);
  MetricsRegistry restored;
  BinaryReader reader(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(restored, reader));
  // Only the counter came back: the restored registry never learned the
  // gauge's (stale) instantaneous value.
  EXPECT_EQ(restored.MetricCount(), 1u);
  EXPECT_EQ(restored.GetCounter("kept").Value(), 1u);
}

TEST(MetricsPersistTest, DoubleRestoreDoublesValues) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  // Documents the additive contract's sharp edge: applying the same
  // record twice counts it twice (callers gate restore on recovery).
  MetricsRegistry source;
  source.GetCounter("c").Add(3);
  const std::vector<uint8_t> bytes = Serialize(source);
  MetricsRegistry restored;
  BinaryReader first(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(restored, first));
  BinaryReader second(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(restored, second));
  EXPECT_EQ(restored.GetCounter("c").Value(), 6u);
}

TEST(MetricsPersistTest, RejectsTruncatedAndCorruptRecords) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry source;
  source.GetCounter("c").Add(9);
  source.GetHistogram("h").Record(2);
  const std::vector<uint8_t> bytes = Serialize(source);

  // Every strict prefix must be rejected, not crash or loop.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    MetricsRegistry sink;
    BinaryReader reader(bytes.data(), cut);
    EXPECT_FALSE(RestoreMetricsInto(sink, reader)) << "prefix " << cut;
  }

  // A flipped magic byte must be rejected outright.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[0] ^= 0xFF;
  MetricsRegistry sink;
  BinaryReader reader(corrupt.data(), corrupt.size());
  EXPECT_FALSE(RestoreMetricsInto(sink, reader));
}

TEST(MetricsPersistTest, EmptyRegistrySerializesAndRestores) {
  if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry source;
  const std::vector<uint8_t> bytes = Serialize(source);
  MetricsRegistry restored;
  BinaryReader reader(bytes.data(), bytes.size());
  ASSERT_TRUE(RestoreMetricsInto(restored, reader));
  EXPECT_EQ(restored.MetricCount(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace asketch
