// Tests for the trace-event flight recorder: span recording, the
// disabled-by-default contract, ring wrap (overwrite-oldest), concurrent
// recording, and the Chrome trace_event JSON rendering.

#include "src/obs/trace.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "tests/common/json_checker.h"

namespace asketch {
namespace obs {
namespace {

// The span tests are compiled out with telemetry: the stub Collect()
// provably returns an empty vector, so indexing into it would trip
// -Werror=array-bounds at compile time, not just skip at runtime.
#ifndef ASKETCH_NO_TELEMETRY

class TraceTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!TelemetryCompiledIn()) GTEST_SKIP() << "telemetry compiled out";
    TraceRegistry::Global().SetEnabled(false);
    TraceRegistry::Global().Reset();
  }
  void TearDown() override {
    TraceRegistry::Global().SetEnabled(false);
    TraceRegistry::Global().Reset();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  { ASKETCH_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(TraceRegistry::Global().Collect().empty());
}

TEST_F(TraceTest, EnabledRecordsCompletedSpans) {
  TraceRegistry::Global().SetEnabled(true);
  { ASKETCH_TRACE_SPAN("outer"); }
  { ASKETCH_TRACE_SPAN("outer"); }
  const auto events = TraceRegistry::Global().Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "outer");
  // Collect orders by start time.
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, NestedSpansBothRecorded) {
  TraceRegistry::Global().SetEnabled(true);
  {
    ASKETCH_TRACE_SPAN("parent");
    ASKETCH_TRACE_SPAN("child");
  }
  const auto events = TraceRegistry::Global().Collect();
  ASSERT_EQ(events.size(), 2u);
  // The parent starts first; the child (destroyed first) must fit inside.
  EXPECT_STREQ(events[0].name, "parent");
  EXPECT_STREQ(events[1].name, "child");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDropped) {
  TraceRegistry::Global().SetRingCapacity(8);
  TraceRegistry::Global().SetEnabled(true);
  for (int i = 0; i < 20; ++i) {
    ASKETCH_TRACE_SPAN("wrapped");
  }
  const auto events = TraceRegistry::Global().Collect();
  EXPECT_EQ(events.size(), 8u);  // capacity bounds retained history
  EXPECT_EQ(TraceRegistry::Global().DroppedEvents(), 12u);
  // Restore the default capacity for rings created by later tests.
  TraceRegistry::Global().SetRingCapacity(4096);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  TraceRegistry::Global().SetEnabled(true);
  { ASKETCH_TRACE_SPAN("main"); }
  std::thread other([] { ASKETCH_TRACE_SPAN("worker"); });
  other.join();
  const auto events = TraceRegistry::Global().Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ConcurrentRecordingLosesNothingBelowCapacity) {
  TraceRegistry::Global().SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ASKETCH_TRACE_SPAN("burst");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Each thread's ring holds 4096 > 500 events: nothing wraps, and the
  // collector must see every span despite the lock-free recording.
  EXPECT_EQ(TraceRegistry::Global().Collect().size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(TraceRegistry::Global().DroppedEvents(), 0u);
}

TEST_F(TraceTest, JsonExportIsStrictlyValid) {
  TraceRegistry::Global().SetEnabled(true);
  { ASKETCH_TRACE_SPAN("span_a"); }
  std::thread other([] { ASKETCH_TRACE_SPAN("span_b"); });
  other.join();
  const std::string json =
      RenderTraceJson(TraceRegistry::Global().Collect());
  EXPECT_TRUE(testing_support::JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"span_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

#endif  // !ASKETCH_NO_TELEMETRY

TEST(TraceJsonTest, EmptyEventListIsValidJson) {
  const std::string json = RenderTraceJson({});
  EXPECT_TRUE(testing_support::JsonChecker::Valid(json)) << json;
}

}  // namespace
}  // namespace obs
}  // namespace asketch
