// Pipeline graceful degradation: bounded waits under a slow consumer,
// worker-death detection and takeover. Every scenario here must
// TERMINATE — an unbounded producer spin is the failure mode under test.
// Runs under TSan in CI alongside the other pipeline tests.

#include <vector>

#include <gtest/gtest.h>

#include <unordered_map>

#include "src/core/pipeline_asketch.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 5;
  return config;
}

std::vector<Tuple> SkewedStream(uint64_t n) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = 3000;
  spec.skew = 1.1;
  spec.seed = 99;
  return GenerateStream(spec);
}

using TruthMap = std::unordered_map<item_t, uint64_t>;

/// Every key estimate must cover the true count minus what the pipeline
/// itself reports as shed (zero under kInlineApply).
void ExpectOneSidedModuloShed(const PipelineASketch& pipeline,
                              const TruthMap& truth) {
  const uint64_t shed = pipeline.stats().shed_tuples;
  for (const auto& [key, count] : truth) {
    EXPECT_GE(static_cast<uint64_t>(pipeline.Estimate(key)) + shed, count)
        << "key " << key;
  }
}

TEST(PipelineOverloadTest, StalledWorkerInlineApplyKeepsGuarantee) {
  // Tiny queue + stalled worker forces the bounded wait to trip on
  // nearly every forwarded tuple.
  PipelineOverloadOptions overload;
  overload.policy = OverloadPolicy::kInlineApply;
  overload.max_push_spins = 8;
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/16, overload);
  TruthMap exact;

  pipeline.StallWorkerForTesting(true);
  for (const Tuple& t : SkewedStream(20000)) {
    pipeline.Update(t.key);  // must return despite the stall
    ++exact[t.key];
  }
  EXPECT_TRUE(pipeline.stats().degraded);
  EXPECT_GT(pipeline.stats().forward_full_spins, 0u);
  EXPECT_GT(pipeline.stats().inline_applied, 0u);
  EXPECT_EQ(pipeline.stats().shed_tuples, 0u);

  pipeline.StallWorkerForTesting(false);
  pipeline.Flush();
  ExpectOneSidedModuloShed(pipeline, exact);
}

TEST(PipelineOverloadTest, StalledWorkerShedPolicyTerminatesAndAccounts) {
  PipelineOverloadOptions overload;
  overload.policy = OverloadPolicy::kShed;
  overload.max_push_spins = 8;
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/16, overload);
  TruthMap exact;

  pipeline.StallWorkerForTesting(true);
  for (const Tuple& t : SkewedStream(20000)) {
    pipeline.Update(t.key);
    ++exact[t.key];
  }
  EXPECT_TRUE(pipeline.stats().degraded);
  EXPECT_GT(pipeline.stats().shed_tuples, 0u);
  EXPECT_EQ(pipeline.stats().inline_applied, 0u);

  pipeline.StallWorkerForTesting(false);
  pipeline.Flush();
  // The guarantee weakens to one-sided modulo the reported shed weight.
  ExpectOneSidedModuloShed(pipeline, exact);
}

TEST(PipelineOverloadTest, TransientStallRecoversWithoutDegrading) {
  // A stall shorter than the spin budget must leave no trace: the
  // pipeline just waits it out.
  PipelineOverloadOptions overload;
  overload.max_push_spins = 1u << 30;  // effectively unbounded
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/1024,
                           overload);
  TruthMap exact;
  const auto stream = SkewedStream(20000);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i == 5000) pipeline.StallWorkerForTesting(true);
    if (i == 6000) pipeline.StallWorkerForTesting(false);
    pipeline.Update(stream[i].key);
    ++exact[stream[i].key];
  }
  pipeline.Flush();
  EXPECT_FALSE(pipeline.stats().degraded);
  EXPECT_EQ(pipeline.stats().inline_applied, 0u);
  EXPECT_EQ(pipeline.stats().shed_tuples, 0u);
  ExpectOneSidedModuloShed(pipeline, exact);
  // Normal-path accounting still balances.
  EXPECT_EQ(pipeline.stats().filter_hits + pipeline.stats().forwarded,
            stream.size());
}

TEST(PipelineOverloadTest, KilledWorkerFallsBackToSingleThreaded) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/64);
  TruthMap exact;
  const auto stream = SkewedStream(30000);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i == 10000) pipeline.KillWorkerForTesting();
    pipeline.Update(stream[i].key);  // must terminate before and after
    ++exact[stream[i].key];
  }
  pipeline.Flush();  // must terminate with a dead worker
  EXPECT_TRUE(pipeline.worker_dead());
  EXPECT_TRUE(pipeline.stats().worker_dead);
  EXPECT_TRUE(pipeline.stats().degraded);
  EXPECT_GT(pipeline.stats().inline_applied, 0u);
  // The worker died at a message boundary, so no queued weight was lost
  // and the one-sided guarantee survives the takeover.
  ExpectOneSidedModuloShed(pipeline, exact);
}

TEST(PipelineOverloadTest, KilledWorkerBeforeAnyUpdateStillWorks) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/64);
  pipeline.KillWorkerForTesting();
  TruthMap exact;
  for (const Tuple& t : SkewedStream(10000)) {
    pipeline.Update(t.key);
    ++exact[t.key];
  }
  pipeline.Flush();
  EXPECT_TRUE(pipeline.worker_dead());
  ExpectOneSidedModuloShed(pipeline, exact);
}

TEST(PipelineOverloadTest, DestructorJoinsStalledWorker) {
  // Destroying a pipeline whose worker is parked must not hang.
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/16);
  pipeline.StallWorkerForTesting(true);
  for (item_t key = 0; key < 1000; ++key) pipeline.Update(key);
  // Destructor runs with the worker still stalled.
}

TEST(PipelineOverloadTest, DestructorJoinsDeadWorker) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/16);
  pipeline.KillWorkerForTesting();
  for (item_t key = 0; key < 1000; ++key) pipeline.Update(key);
}

}  // namespace
}  // namespace asketch
