// Pipeline-parallel ASketch (§6.2): correctness of the message protocol.

#include "src/core/pipeline_asketch.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 5;
  return config;
}

TEST(PipelineASketchTest, EmptyPipelineFlushesImmediately) {
  PipelineASketch pipeline(SmallConfig());
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(1), 0u);
}

TEST(PipelineASketchTest, FilterOnlyTrafficIsExact) {
  PipelineASketch pipeline(SmallConfig());
  for (int i = 0; i < 100; ++i) {
    pipeline.Update(1);
    pipeline.Update(2);
  }
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(1), 100u);
  EXPECT_EQ(pipeline.Estimate(2), 100u);
  EXPECT_EQ(pipeline.stats().forwarded, 0u);
}

TEST(PipelineASketchTest, OverflowTrafficReachesSketch) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/64);
  // 16 filter slots; key 1000+i are one-shot keys beyond capacity.
  for (item_t key = 0; key < 200; ++key) {
    pipeline.Update(key, 1);
  }
  pipeline.Flush();
  EXPECT_GT(pipeline.stats().forwarded, 0u);
  wide_count_t total = 0;
  for (item_t key = 0; key < 200; ++key) {
    const count_t est = pipeline.Estimate(key);
    EXPECT_GE(est, 1u) << "key " << key;
    total += est;
  }
  EXPECT_GE(total, 200u);
}

TEST(PipelineASketchTest, HotKeyMigratesIntoFilter) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/64);
  // Fill the filter with 16 distinct lukewarm keys.
  for (item_t key = 0; key < 16; ++key) pipeline.Update(key, 3);
  // Key 777 is hot; it must eventually be exchanged into the filter.
  for (int i = 0; i < 1000; ++i) pipeline.Update(777);
  pipeline.Flush();
  EXPECT_GT(pipeline.stats().exchanges, 0u);
  const auto top = pipeline.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, 777u);
  EXPECT_GE(pipeline.Estimate(777), 1000u);
}

TEST(PipelineASketchTest, NeverUnderestimatesAfterFlush) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/128);
  ExactCounter truth(3000);
  StreamSpec spec;
  spec.stream_size = 200000;
  spec.num_distinct = 3000;
  spec.skew = 1.2;
  spec.seed = 71;
  for (const Tuple& t : GenerateStream(spec)) {
    pipeline.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  pipeline.Flush();
  for (item_t key = 0; key < 3000; ++key) {
    ASSERT_GE(pipeline.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(PipelineASketchTest, RepeatedFlushesAreIdempotent) {
  PipelineASketch pipeline(SmallConfig());
  for (int i = 0; i < 1000; ++i) {
    pipeline.Update(static_cast<item_t>(i % 40));
  }
  pipeline.Flush();
  const count_t first = pipeline.Estimate(7);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(7), first);
}

TEST(PipelineASketchTest, UpdatesAfterFlushKeepWorking) {
  PipelineASketch pipeline(SmallConfig());
  for (int i = 0; i < 100; ++i) pipeline.Update(1);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(1), 100u);
  for (int i = 0; i < 50; ++i) pipeline.Update(1);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(1), 150u);
}

TEST(PipelineASketchTest, TinyQueuesExerciseBackpressure) {
  PipelineASketch pipeline(SmallConfig(), /*queue_capacity=*/4);
  ExactCounter truth(500);
  Rng rng(83);
  // Modest size: with 4-slot queues on a single hardware thread, every
  // push is a backpressure yield storm — the point is to hammer the
  // re-entrant drain paths, not to be a throughput test.
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(500));
    pipeline.Update(key);
    truth.Update(key);
  }
  pipeline.Flush();
  for (item_t key = 0; key < 500; ++key) {
    ASSERT_GE(pipeline.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(PipelineASketchTest, StatsAccounting) {
  PipelineASketch pipeline(SmallConfig());
  for (item_t key = 0; key < 100; ++key) pipeline.Update(key);
  pipeline.Flush();
  const PipelineStats& stats = pipeline.stats();
  EXPECT_EQ(stats.filter_hits + stats.forwarded, 100u);
  EXPECT_EQ(stats.fixups_applied + stats.fixups_dropped, stats.exchanges);
}

TEST(PipelineASketchTest, RejectsNonPositiveDeltas) {
  PipelineASketch pipeline(SmallConfig());
  EXPECT_DEATH(pipeline.Update(1, 0), "delta");
  EXPECT_DEATH(pipeline.Update(1, -1), "delta");
}

}  // namespace
}  // namespace asketch
