#include "src/core/pipeline_holistic_udaf.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

HolisticUdafConfig SmallConfig(uint32_t table = 8) {
  HolisticUdafConfig config;
  config.table_capacity = table;
  config.sketch.width = 4;
  config.sketch.depth = 1024;
  config.sketch.seed = 11;
  return config;
}

TEST(PipelineHolisticUdafTest, BufferedCountsFlushOnDemand) {
  PipelineHolisticUdaf pipeline(SmallConfig());
  pipeline.Update(1, 5);
  pipeline.Update(1, 3);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(1), 8u);
}

TEST(PipelineHolisticUdafTest, OverflowFlushesThroughTheQueue) {
  PipelineHolisticUdaf pipeline(SmallConfig(2));
  pipeline.Update(1);
  pipeline.Update(2);
  pipeline.Update(3);  // overflow -> async flush of {1, 2}
  pipeline.Flush();
  EXPECT_GE(pipeline.flush_count(), 1u);
  EXPECT_EQ(pipeline.Estimate(1), 1u);
  EXPECT_EQ(pipeline.Estimate(2), 1u);
  EXPECT_EQ(pipeline.Estimate(3), 1u);
}

TEST(PipelineHolisticUdafTest, NeverUnderestimatesAfterFlush) {
  PipelineHolisticUdaf pipeline(SmallConfig(16));
  ExactCounter truth(2000);
  StreamSpec spec;
  spec.stream_size = 100000;
  spec.num_distinct = 2000;
  spec.skew = 1.0;
  spec.seed = 77;
  for (const Tuple& t : GenerateStream(spec)) {
    pipeline.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  pipeline.Flush();
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(pipeline.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(PipelineHolisticUdafTest, TinyQueueBackpressure) {
  PipelineHolisticUdaf pipeline(SmallConfig(4), /*queue_capacity=*/2);
  Rng rng(13);
  ExactCounter truth(100);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(100));
    pipeline.Update(key);
    truth.Update(key);
  }
  pipeline.Flush();
  for (item_t key = 0; key < 100; ++key) {
    ASSERT_GE(pipeline.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(PipelineHolisticUdafTest, UpdatesAfterFlushKeepWorking) {
  PipelineHolisticUdaf pipeline(SmallConfig());
  for (int i = 0; i < 100; ++i) pipeline.Update(5);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(5), 100u);
  for (int i = 0; i < 50; ++i) pipeline.Update(5);
  pipeline.Flush();
  EXPECT_EQ(pipeline.Estimate(5), 150u);
}

}  // namespace
}  // namespace asketch
