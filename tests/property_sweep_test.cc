// Parameterized property sweeps: the core invariants checked across a
// grid of configurations (sketch geometry × skew × budget), in the
// spirit of exhaustive property-based testing.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

// ---------------------------------------------------------------------------
// Count-Min: one-sidedness and expected-error scaling over geometries.
// ---------------------------------------------------------------------------

class CountMinGeometrySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(CountMinGeometrySweep, OneSidedAndBounded) {
  const auto [width, depth] = GetParam();
  CountMinConfig config;
  config.width = width;
  config.depth = depth;
  config.seed = width * 131 + depth;
  CountMin sketch(config);
  ExactCounter truth(3000);
  StreamSpec spec;
  spec.stream_size = 30000;
  spec.num_distinct = 3000;
  spec.skew = 1.0;
  spec.seed = width + depth;
  for (const Tuple& t : GenerateStream(spec)) {
    sketch.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  // One-sidedness everywhere; mean over-estimate below a loose multiple
  // of the analytic N/depth bound.
  double total_error = 0;
  for (item_t key = 0; key < 3000; ++key) {
    const count_t est = sketch.Estimate(key);
    ASSERT_GE(est, truth.Count(key)) << "key " << key;
    total_error += static_cast<double>(est) - truth.Count(key);
  }
  const double mean_error = total_error / 3000;
  EXPECT_LE(mean_error, 3.0 * 30000 / depth + 1.0)
      << "w=" << width << " h=" << depth;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CountMinGeometrySweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(64u, 256u, 1024u, 4096u)));

// ---------------------------------------------------------------------------
// ASketch: space identity and one-sidedness over budget x filter-size.
// ---------------------------------------------------------------------------

class ASketchBudgetSweep
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t>> {};

TEST_P(ASketchBudgetSweep, SpaceIdentityAndOneSidedness) {
  const auto [budget_kb, filter_items] = GetParam();
  ASketchConfig config;
  config.total_bytes = budget_kb * 1024;
  config.width = 8;
  config.filter_items = filter_items;
  if (filter_items * RelaxedHeapFilter::BytesPerItem() >=
      config.total_bytes / 2) {
    GTEST_SKIP() << "filter would consume most of the budget";
  }
  config.seed = budget_kb * 7 + filter_items;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  // Exactly the plain sketch's budget or less, and never more than one
  // cell-row's rounding below it.
  EXPECT_LE(as.MemoryUsageBytes(), config.total_bytes);
  EXPECT_GT(as.MemoryUsageBytes(),
            config.total_bytes - config.width * sizeof(count_t) -
                RelaxedHeapFilter::BytesPerItem());
  ExactCounter truth(2000);
  StreamSpec spec;
  spec.stream_size = 20000;
  spec.num_distinct = 2000;
  spec.skew = 1.4;
  spec.seed = 3 + filter_items;
  for (const Tuple& t : GenerateStream(spec)) {
    as.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(as.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, ASketchBudgetSweep,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 64, 128),
                       ::testing::Values(8u, 32u, 128u, 512u)));

// ---------------------------------------------------------------------------
// ASketch error vs Count-Min across skews: the paper's headline property
// (never meaningfully worse; better once skew kicks in).
// ---------------------------------------------------------------------------

class ASketchSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ASketchSkewSweep, TotalOverestimateNotWorseThanCountMin) {
  const double skew = GetParam();
  const size_t budget = 16 * 1024;
  CountMin cm(CountMinConfig::FromSpaceBudget(budget, 8, 9));
  ASketchConfig config;
  config.total_bytes = budget;
  config.width = 8;
  config.filter_items = 32;
  config.seed = 9;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  ExactCounter truth(50000);
  StreamSpec spec;
  spec.stream_size = 200000;
  spec.num_distinct = 50000;
  spec.skew = skew;
  spec.seed = 1000 + static_cast<uint64_t>(skew * 10);
  for (const Tuple& t : GenerateStream(spec)) {
    cm.Update(t.key, t.value);
    as.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  // Frequency-weighted total error (observed-error numerator over the
  // whole domain, weighting keys by their own frequency — the paper's
  // query mix).
  double cm_error = 0, as_error = 0, weight_sum = 0;
  for (item_t key = 0; key < 50000; ++key) {
    const double weight = static_cast<double>(truth.Count(key));
    cm_error +=
        weight * (static_cast<double>(cm.Estimate(key)) - truth.Count(key));
    as_error +=
        weight * (static_cast<double>(as.Estimate(key)) - truth.Count(key));
    weight_sum += weight * truth.Count(key);
  }
  // Normalize to the paper's observed-error form.
  const double cm_observed = cm_error / weight_sum;
  const double as_observed = as_error / weight_sum;
  // At low skew ASketch may be marginally worse (smaller h'); in the
  // real-world range it must win. At very high skew both errors are at
  // the noise floor, so an absolute tolerance applies throughout.
  constexpr double kFloor = 1e-5;  // 0.001% observed error
  if (skew >= 1.0) {
    EXPECT_LE(as_observed, cm_observed + kFloor) << "skew " << skew;
  } else {
    EXPECT_LE(as_observed, cm_observed * 1.25 + kFloor)
        << "skew " << skew;
  }
  // And in the mid-skew sweet spot the win must be decisive.
  if (skew >= 1.25 && skew <= 1.75) {
    EXPECT_LT(as_observed, cm_observed) << "skew " << skew;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ASketchSkewSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0,
                                           1.25, 1.5, 1.75, 2.0, 2.5,
                                           3.0));

// ---------------------------------------------------------------------------
// Filter-design equivalence: all four designs produce identical ASketch
// estimates when exchanges never tie (deterministic stream).
// ---------------------------------------------------------------------------

TEST(FilterEquivalenceTest, AllDesignsAgreeOnEstimatesWithoutTies) {
  // Weights chosen so no two filter entries ever share a new_count:
  // min-eviction is then unambiguous and every design must behave
  // identically.
  const CountMinConfig sketch_config =
      CountMinConfig::FromSpaceBudget(8 * 1024, 4, 13);
  ASketch<VectorFilter, CountMin> a(VectorFilter(8),
                                    CountMin(sketch_config));
  ASketch<StrictHeapFilter, CountMin> b(StrictHeapFilter(8),
                                        CountMin(sketch_config));
  ASketch<RelaxedHeapFilter, CountMin> c(RelaxedHeapFilter(8),
                                         CountMin(sketch_config));
  ASketch<StreamSummaryFilter, CountMin> d(StreamSummaryFilter(8),
                                           CountMin(sketch_config));
  Rng rng(55);
  count_t next_weight = 1;
  for (int i = 0; i < 5000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(64));
    const count_t weight = next_weight;
    next_weight += 1 + static_cast<count_t>(rng.NextBounded(3));
    a.Update(key, weight);
    b.Update(key, weight);
    c.Update(key, weight);
    d.Update(key, weight);
  }
  for (item_t key = 0; key < 64; ++key) {
    const count_t expected = a.Estimate(key);
    ASSERT_EQ(b.Estimate(key), expected) << "key " << key;
    ASSERT_EQ(c.Estimate(key), expected) << "key " << key;
    ASSERT_EQ(d.Estimate(key), expected) << "key " << key;
  }
  EXPECT_EQ(a.stats().exchanges, b.stats().exchanges);
  EXPECT_EQ(a.stats().exchanges, c.stats().exchanges);
  EXPECT_EQ(a.stats().exchanges, d.stats().exchanges);
}

}  // namespace
}  // namespace asketch
