#include "src/workload/query_generator.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

std::vector<Tuple> TestStream() {
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 1000;
  spec.skew = 1.5;
  spec.seed = 13;
  return GenerateStream(spec);
}

TEST(QueryGeneratorTest, ProducesRequestedCount) {
  const auto stream = TestStream();
  const auto queries = GenerateQueries(
      stream, 1000, 777, QuerySampling::kFrequencyProportional, 1);
  EXPECT_EQ(queries.size(), 777u);
}

TEST(QueryGeneratorTest, DeterministicForSameSeed) {
  const auto stream = TestStream();
  const auto a = GenerateQueries(stream, 1000, 100,
                                 QuerySampling::kFrequencyProportional, 5);
  const auto b = GenerateQueries(stream, 1000, 100,
                                 QuerySampling::kFrequencyProportional, 5);
  EXPECT_EQ(a, b);
}

TEST(QueryGeneratorTest, FrequencyProportionalFavoursHotKeys) {
  const auto stream = TestStream();
  ExactCounter truth(1000);
  for (const Tuple& t : stream) truth.Update(t.key, t.value);
  const item_t hottest = truth.KeysByFrequency()[0];
  const auto queries = GenerateQueries(
      stream, 1000, 20000, QuerySampling::kFrequencyProportional, 3);
  uint64_t hottest_queries = 0;
  for (const item_t key : queries) {
    if (key == hottest) ++hottest_queries;
  }
  const double expected_share = static_cast<double>(truth.Count(hottest)) /
                                static_cast<double>(truth.Total());
  const double observed_share = static_cast<double>(hottest_queries) /
                                static_cast<double>(queries.size());
  EXPECT_NEAR(observed_share, expected_share, 0.05);
  EXPECT_GT(observed_share, 0.1);  // skew 1.5: the head dominates
}

TEST(QueryGeneratorTest, UniformModeCoversTheDomainEvenly) {
  const auto stream = TestStream();
  const auto queries = GenerateQueries(
      stream, 100, 50000, QuerySampling::kUniformOverDistinct, 7);
  std::vector<int> histogram(100, 0);
  for (const item_t key : queries) {
    ASSERT_LT(key, 100u);
    ++histogram[key];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, 500, 150);
  }
}

TEST(QueryGeneratorTest, UniformModeIgnoresStreamContents) {
  const auto queries = GenerateQueries(
      {}, 50, 1000, QuerySampling::kUniformOverDistinct, 9);
  EXPECT_EQ(queries.size(), 1000u);
  for (const item_t key : queries) {
    ASSERT_LT(key, 50u);
  }
}

}  // namespace
}  // namespace asketch
