#include "src/common/random.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace asketch {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, SeedZeroIsWellMixed) {
  Rng rng(0);
  // A badly-seeded xoshiro (all-zero state) would output zeros forever.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) {
    if (rng.NextU64() != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(7);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(7);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(42);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(42);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> histogram(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[rng.NextBounded(kBound)];
  }
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int count : histogram) {
    EXPECT_GT(count, expected * 0.9);
    EXPECT_LT(count, expected * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDoublePositive();
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsNearHalf) {
  Rng rng(9);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

}  // namespace
}  // namespace asketch
