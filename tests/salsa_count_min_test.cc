#include "src/sketch/salsa_count_min.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/sketch/count_min.h"
#include "src/sketch/frequency_estimator.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

static_assert(FrequencyEstimatorType<SalsaCountMin>);

SalsaConfig SmallConfig(uint32_t width = 4, uint32_t depth = 256,
                        uint64_t seed = 42) {
  SalsaConfig config;
  config.width = width;
  config.depth = depth;
  config.seed = seed;
  return config;
}

TEST(SalsaConfigTest, ValidatesParameters) {
  SalsaConfig config = SmallConfig();
  EXPECT_FALSE(config.Validate().has_value());
  config.width = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.width = 65;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.depth = 0;
  EXPECT_TRUE(config.Validate().has_value());
  config = SmallConfig();
  config.depth = 6;  // not a multiple of 4
  EXPECT_TRUE(config.Validate().has_value());
}

TEST(SalsaConfigTest, FromSpaceBudgetFitsBudgetWithBitmaps) {
  // 128 KB, w = 8: counters + merge bitmaps must fit the budget while
  // wasting at most one quad per row of slack.
  const SalsaConfig config = SalsaConfig::FromSpaceBudget(128 * 1024, 8);
  EXPECT_EQ(config.width, 8u);
  EXPECT_EQ(config.depth % 4, 0u);
  const SalsaCountMin sketch(config);
  EXPECT_LE(sketch.MemoryUsageBytes(), 128u * 1024u);
  EXPECT_GT(sketch.MemoryUsageBytes(), 127u * 1024u);
  // The whole point: far more buckets than a 32-bit Count-Min row
  // (h = 4096 at this budget).
  EXPECT_GT(config.depth, 3u * 4096u);
}

TEST(SalsaConfigTest, FromSpaceBudgetGuardsDegenerateWidth) {
  const SalsaConfig config = SalsaConfig::FromSpaceBudget(1024, 0);
  EXPECT_EQ(config.width, 1u);
  EXPECT_FALSE(config.Validate().has_value());
}

TEST(SalsaCountMinTest, ExactWhenNoCollisions) {
  SalsaCountMin sketch(SmallConfig(4, 4096));
  sketch.Update(1, 10);
  sketch.Update(2, 20);
  EXPECT_EQ(sketch.Estimate(1), 10u);
  EXPECT_EQ(sketch.Estimate(2), 20u);
  EXPECT_EQ(sketch.Estimate(3), 0u);
}

TEST(SalsaCountMinTest, CountsPastEightBitOverflowViaMerging) {
  // One row, four buckets: a single key's 300 arrivals overflow its
  // 8-bit counter and must survive in a merged 16-bit counter.
  SalsaCountMin sketch(SmallConfig(1, 4, 7));
  for (int i = 0; i < 300; ++i) sketch.Update(42);
  EXPECT_GE(sketch.Estimate(42), 300u);
  EXPECT_GE(sketch.MergedPairs(), 1u);
}

TEST(SalsaCountMinTest, CascadingMergeSaturatesAtTopLevel) {
  SalsaCountMin sketch(SmallConfig(1, 4, 7));
  sketch.Update(42, static_cast<delta_t>(~count_t{0}));
  EXPECT_EQ(sketch.Estimate(42), ~count_t{0});
  sketch.Update(42, 100);
  EXPECT_EQ(sketch.Estimate(42), ~count_t{0});  // saturates, no wrap
  EXPECT_EQ(sketch.MergedQuads(), 1u);
}

TEST(SalsaCountMinTest, NeverUnderestimatesUnderHeavyMergePressure) {
  // Tiny rows + 200k weighted arrivals (~5M total weight per row over
  // 64 buckets, ~78k per bucket): most buckets blow through both the
  // 8-bit and 16-bit caps, exercising every merge path.
  SalsaCountMin sketch(SmallConfig(4, 64));
  ExactCounter truth(1000);
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(1000));
    const delta_t weight = static_cast<delta_t>(1 + rng.NextBounded(49));
    sketch.Update(key, weight);
    truth.Update(key, weight);
  }
  EXPECT_GT(sketch.MergedPairs(), 0u);
  EXPECT_GT(sketch.MergedQuads(), 0u);
  for (item_t key = 0; key < 1000; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(SalsaCountMinTest, LogicalCountersShrinkAsMergesHappen) {
  SalsaCountMin sketch(SmallConfig(2, 64));
  EXPECT_EQ(sketch.LogicalCounters(), 2u * 64u);
  Rng rng(9);
  for (int i = 0; i < 100000; ++i) {
    sketch.Update(static_cast<item_t>(rng.NextBounded(500)));
  }
  const uint64_t logical = sketch.LogicalCounters();
  EXPECT_LT(logical, 2u * 64u);
  EXPECT_EQ(logical, 2u * 64u - sketch.MergedPairs() -
                         2u * sketch.MergedQuads());
}

TEST(SalsaCountMinTest, DeletionsReverseInsertionsBeforeMerging) {
  SalsaCountMin sketch(SmallConfig());
  sketch.Update(5, 100);
  sketch.Update(5, -40);
  EXPECT_EQ(sketch.Estimate(5), 60u);
  sketch.Update(5, -60);
  EXPECT_EQ(sketch.Estimate(5), 0u);
  EXPECT_EQ(sketch.MergedPairs(), 0u);
}

TEST(SalsaCountMinTest, ResetClearsCountersAndUnmerges) {
  SalsaCountMin sketch(SmallConfig(1, 4, 7));
  for (int i = 0; i < 300; ++i) sketch.Update(42);
  ASSERT_GE(sketch.MergedPairs(), 1u);
  sketch.Reset();
  EXPECT_EQ(sketch.Estimate(42), 0u);
  EXPECT_EQ(sketch.MergedPairs(), 0u);
  EXPECT_EQ(sketch.MergedQuads(), 0u);
  EXPECT_EQ(sketch.LogicalCounters(), 4u);
}

TEST(SalsaCountMinTest, BatchMatchesScalarBitIdentically) {
  SalsaCountMin batched(SmallConfig(4, 64, 31));
  SalsaCountMin scalar(SmallConfig(4, 64, 31));
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 2000;
  spec.skew = 1.2;
  const std::vector<Tuple> stream = GenerateStream(spec);
  batched.UpdateBatch(stream);
  for (const Tuple& t : stream) scalar.Update(t.key, t.value);
  EXPECT_EQ(batched.MergedPairs(), scalar.MergedPairs());
  EXPECT_EQ(batched.MergedQuads(), scalar.MergedQuads());
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_EQ(batched.Estimate(key), scalar.Estimate(key)) << "key " << key;
  }
}

TEST(SalsaCountMinTest, UpdateAndEstimateMatchesSeparateCalls) {
  SalsaCountMin fused(SmallConfig(4, 128, 31));
  SalsaCountMin plain(SmallConfig(4, 128, 31));
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(2000));
    const delta_t delta = 1 + static_cast<delta_t>(rng.NextBounded(5));
    const count_t fused_estimate = fused.UpdateAndEstimate(key, delta);
    plain.Update(key, delta);
    ASSERT_EQ(fused_estimate, plain.Estimate(key)) << "step " << i;
  }
}

TEST(SalsaCountMinTest, EstimateRelaxedMatchesEstimateWhenQuiescent) {
  SalsaCountMin sketch(SmallConfig(4, 64));
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    sketch.Update(static_cast<item_t>(rng.NextBounded(1000)));
  }
  for (item_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(sketch.EstimateRelaxed(key), sketch.Estimate(key));
  }
}

TEST(SalsaCountMinTest, AdoptFromCopiesCountersAndLayoutInPlace) {
  SalsaCountMin donor(SmallConfig(2, 64, 5));
  Rng rng(17);
  for (int i = 0; i < 120000; ++i) {
    donor.Update(static_cast<item_t>(rng.NextBounded(300)));
  }
  ASSERT_GT(donor.MergedPairs(), 0u);
  SalsaCountMin target(SmallConfig(2, 64, 5));
  SalsaCountMin copy = donor;
  ASSERT_TRUE(target.CanAdoptFrom(donor));
  target.AdoptFrom(std::move(copy));
  EXPECT_EQ(target.MergedPairs(), donor.MergedPairs());
  EXPECT_EQ(target.MergedQuads(), donor.MergedQuads());
  for (item_t key = 0; key < 300; ++key) {
    ASSERT_EQ(target.Estimate(key), donor.Estimate(key));
  }
  SalsaCountMin mismatched(SmallConfig(2, 64, 6));
  EXPECT_FALSE(target.CanAdoptFrom(mismatched));
}

TEST(SalsaCountMinTest, MoreAccurateThanCountMinAtEqualBudget) {
  // The reason this backend exists: at an equal byte budget the 8-bit
  // rows are ~3.7x wider, and on a skewed tail that buys a large error
  // reduction. Small-scale version of bench_salsa_accuracy.
  constexpr size_t kBudget = 16 * 1024;
  CountMin count_min(CountMinConfig::FromSpaceBudget(kBudget, 4));
  SalsaCountMin salsa(SalsaConfig::FromSpaceBudget(kBudget, 4));
  ExactCounter truth(20000);
  StreamSpec spec;
  spec.stream_size = 200000;
  spec.num_distinct = 20000;
  spec.skew = 1.1;
  for (const Tuple& t : GenerateStream(spec)) {
    count_min.Update(t.key, t.value);
    salsa.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  wide_count_t cm_error = 0;
  wide_count_t salsa_error = 0;
  for (item_t key = 0; key < 20000; ++key) {
    ASSERT_GE(salsa.Estimate(key), truth.Count(key)) << "key " << key;
    cm_error += count_min.Estimate(key) - truth.Count(key);
    salsa_error += salsa.Estimate(key) - truth.Count(key);
  }
  EXPECT_LT(salsa_error * 2, cm_error);
}

TEST(SalsaCountMinConcurrencyTest, RelaxedReadersStayOneSided) {
  // One writer keeps inserting (forcing merges along the way); readers
  // concurrently estimate keys whose minimum count is already fixed.
  // Each reader key received `kPrefix` arrivals before the readers
  // start, so every validated estimate must be >= kPrefix.
  SalsaCountMin sketch(SmallConfig(4, 64, 11));
  constexpr count_t kPrefix = 500;
  constexpr item_t kTracked = 3;
  for (item_t key = 0; key < kTracked; ++key) {
    sketch.Update(key, kPrefix);
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(23);
    while (!stop.load(std::memory_order_acquire)) {
      sketch.Update(static_cast<item_t>(rng.NextBounded(1000)));
    }
  });
  std::vector<std::thread> readers;
  std::atomic<uint64_t> violations{0};
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200000; ++i) {
        const item_t key = static_cast<item_t>(i % kTracked);
        if (sketch.EstimateRelaxed(key) < kPrefix) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(sketch.MergedPairs(), 0u);  // merges actually raced the reads
}

}  // namespace
}  // namespace asketch
