// Sampled tail ingest (NitroSketch-style geometric skip counters,
// ALGORITHMS.md §8). Pins the three guarantees the mode ships with:
// the filter head stays bit-exact under a stable head (hits and
// writebacks are never sampled), the sampled tail is unbiased across
// sampler seeds (1/p-scaled compensation with stochastic rounding),
// and rate 1.0 is bit-identical to the unsampled path — the sampler
// is inert at permille 1000, so enabling the flag at rate 1.0 cannot
// perturb a single serialized byte for either backend. Also covers
// the delta-mode accounting invariants: tail_weight() books true
// (unscaled) mass and sampled_skips() counts the elisions.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/sampling.h"
#include "src/common/serialize.h"
#include "src/core/asketch.h"
#include "src/core/delta_batch.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

constexpr uint32_t kFilterItems = 16;
constexpr uint32_t kDomain = 4096;

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 32 * 1024;
  config.width = 4;
  config.filter_items = kFilterItems;
  config.seed = 99;
  return config;
}

/// Stable-head warm-up (delta_batch_test idiom): the filter fills with
/// keys [0, kFilterItems) at weights no tail estimate can beat, so no
/// exchange can evict them for the rest of the test. This isolates the
/// head-exactness claim from exchange-timing differences — under head
/// churn the sampled run may legitimately make different exchange
/// decisions, because exchanges consult (perturbed) tail estimates.
template <typename ASketchT>
void WarmHead(ASketchT& sketch) {
  for (item_t key = 0; key < kFilterItems; ++key) {
    sketch.Update(key, 1 << 20);
  }
  ASSERT_TRUE(sketch.filter().Full());
}

/// Hot traffic on the head keys interleaved with a zipf tail on
/// [kFilterItems, kDomain).
std::vector<Tuple> MixedStream(uint64_t seed) {
  StreamSpec spec;
  spec.stream_size = 30000;
  spec.num_distinct = kDomain - kFilterItems;
  spec.skew = 1.1;
  spec.seed = seed;
  std::vector<Tuple> stream = GenerateStream(spec);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (i % 3 == 0) {
      stream[i] = Tuple{static_cast<item_t>(i % kFilterItems), 2};
    } else {
      stream[i].key += kFilterItems;
    }
  }
  return stream;
}

// ---------------------------------------------------------------------
// GeometricSampler unit behavior.
// ---------------------------------------------------------------------

TEST(GeometricSamplerTest, InactiveAtPermille1000) {
  GeometricSampler sampler(7);
  EXPECT_FALSE(sampler.active());
  sampler.SetPermille(1000);
  EXPECT_FALSE(sampler.active());
  sampler.SetPermille(250);
  EXPECT_TRUE(sampler.active());
}

TEST(GeometricSamplerTest, ApplyRateMatchesPermille) {
  GeometricSampler sampler(11);
  sampler.SetPermille(100);  // p = 0.1
  const uint64_t trials = 200000;
  uint64_t applied = 0;
  for (uint64_t i = 0; i < trials; ++i) {
    if (sampler.ShouldApply()) ++applied;
  }
  const double rate = static_cast<double>(applied) / trials;
  EXPECT_NEAR(rate, 0.1, 0.01);
}

TEST(GeometricSamplerTest, ScaleDeltaIsUnbiased) {
  GeometricSampler sampler(13);
  sampler.SetPermille(300);  // p = 0.3; 7/0.3 is fractional
  const uint64_t trials = 100000;
  uint64_t total = 0;
  for (uint64_t i = 0; i < trials; ++i) {
    total += static_cast<uint64_t>(sampler.ScaleDelta(7));
  }
  const double mean = static_cast<double>(total) / trials;
  EXPECT_NEAR(mean, 7.0 / 0.3, 0.1);
}

// ---------------------------------------------------------------------
// Head exactness: with a stable head, every filter entry is untouched
// by sampling — hits and free-slot inserts bypass the sampler.
// ---------------------------------------------------------------------

TEST(SampledIngestTest, HeadStaysBitExactUnderStableHead) {
  auto plain = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto sampled = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  sampled.SetTailSampleRate(0.05);
  sampled.SeedTailSampler(77);
  WarmHead(plain);
  WarmHead(sampled);
  const std::vector<Tuple> stream = MixedStream(31);
  for (const Tuple& t : stream) {
    plain.Update(t.key, static_cast<delta_t>(t.value));
    sampled.Update(t.key, static_cast<delta_t>(t.value));
  }
  EXPECT_GT(sampled.stats().sampled_skips, 0u)
      << "sampling never engaged; the test is vacuous";
  // True-mass accounting: sketch_weight books unscaled tail mass, so
  // the two ledgers agree exactly even though the sampled instance
  // elided most tail sketch updates.
  EXPECT_EQ(sampled.stats().sketch_weight, plain.stats().sketch_weight);
  EXPECT_EQ(sampled.stats().filtered_weight, plain.stats().filtered_weight);
  // The heads are bit-identical: same keys, same exact counters.
  const auto plain_top = plain.TopK();
  const auto sampled_top = sampled.TopK();
  ASSERT_EQ(plain_top.size(), sampled_top.size());
  for (size_t i = 0; i < plain_top.size(); ++i) {
    EXPECT_EQ(plain_top[i].key, sampled_top[i].key);
    EXPECT_EQ(plain_top[i].new_count, sampled_top[i].new_count);
    EXPECT_EQ(plain_top[i].old_count, sampled_top[i].old_count);
  }
}

// ---------------------------------------------------------------------
// Tail unbiasedness: averaged over independent sampler seeds, sampled
// tail estimates converge to the unsampled ones. Per-key estimates are
// noisy (variance ~ count·(1/p − 1)), so the check aggregates over a
// key set; the tolerance is far below the ~1/p one-sided error a
// non-compensated skip policy would produce.
// ---------------------------------------------------------------------

TEST(SampledIngestTest, TailUnbiasedAcrossSeedsWithinTolerance) {
  auto plain = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(plain);
  const std::vector<Tuple> stream = MixedStream(43);
  for (const Tuple& t : stream) {
    plain.Update(t.key, static_cast<delta_t>(t.value));
  }
  std::vector<item_t> tail_keys;
  for (item_t key = kFilterItems; key < kFilterItems + 512; ++key) {
    tail_keys.push_back(key);
  }
  uint64_t reference = 0;
  for (item_t key : tail_keys) reference += plain.Estimate(key);
  ASSERT_GT(reference, 0u);

  constexpr uint64_t kSeeds = 16;
  double mean_total = 0.0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto sampled = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
    sampled.SetTailSampleRate(0.1);
    sampled.SeedTailSampler(seed * 0x9e3779b97f4a7c15ull);
    WarmHead(sampled);
    for (const Tuple& t : stream) {
      sampled.Update(t.key, static_cast<delta_t>(t.value));
    }
    uint64_t total = 0;
    for (item_t key : tail_keys) total += sampled.Estimate(key);
    mean_total += static_cast<double>(total) / kSeeds;
  }
  const double ref = static_cast<double>(reference);
  EXPECT_NEAR(mean_total / ref, 1.0, 0.05)
      << "mean sampled tail mass drifted from the unsampled reference";
}

// ---------------------------------------------------------------------
// Rate 1.0 is the unsampled path, bit for bit, on both backends: the
// sampler is inert at permille 1000 (no RNG draw, no scaling), so the
// serialized states cannot differ.
// ---------------------------------------------------------------------

template <typename ASketchT>
void ExpectRateOneBitIdentical(ASketchT plain, ASketchT sampled) {
  sampled.SetTailSampleRate(1.0);
  sampled.SeedTailSampler(12345);  // seed must be irrelevant at 1.0
  const std::vector<Tuple> stream = MixedStream(59);
  for (const Tuple& t : stream) {
    plain.Update(t.key, static_cast<delta_t>(t.value));
    sampled.Update(t.key, static_cast<delta_t>(t.value));
  }
  EXPECT_EQ(sampled.stats().sampled_skips, 0u);
  BinaryWriter plain_bytes;
  BinaryWriter sampled_bytes;
  ASSERT_TRUE(plain.SerializeTo(plain_bytes));
  ASSERT_TRUE(sampled.SerializeTo(sampled_bytes));
  EXPECT_EQ(plain_bytes.buffer(), sampled_bytes.buffer());
}

TEST(SampledIngestTest, RateOneBitIdenticalCountMin) {
  ExpectRateOneBitIdentical(
      MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig()),
      MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig()));
}

TEST(SampledIngestTest, RateOneBitIdenticalSalsa) {
  ExpectRateOneBitIdentical(
      MakeASketchSalsa<RelaxedHeapFilter>(SmallConfig()),
      MakeASketchSalsa<RelaxedHeapFilter>(SmallConfig()));
}

// ---------------------------------------------------------------------
// Delta-mode accounting: the DeltaBatch tail sampler elides tuples but
// tail_weight() keeps booking the true mass, and applying the delta
// carries the unscaled ledger into the owner.
// ---------------------------------------------------------------------

TEST(SampledIngestTest, DeltaBatchBooksTrueMassAndCountsSkips) {
  auto owner = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(owner);
  DeltaBatch<CountMin> delta = owner.MakeDeltaBatch();
  delta.SetTailSampleRate(0.1, /*seed=*/7);
  const std::vector<Tuple> stream = MixedStream(61);
  uint64_t true_mass = 0;
  for (const Tuple& t : stream) {
    delta.Add(t.key, t.value);
    true_mass += t.value;
  }
  EXPECT_GT(delta.sampled_skips(), 0u);
  EXPECT_EQ(delta.head_weight() + delta.tail_weight(), true_mass)
      << "sampling must elide sketch updates, not ledger mass";
  // Applying the delta conserves the true mass across the owner's N1/N2
  // ledgers (head aggregates land in whichever structure the live
  // filter dictates, so only the sum is pinned).
  const uint64_t booked_before =
      owner.stats().filtered_weight + owner.stats().sketch_weight;
  ASSERT_FALSE(owner.ApplyDelta(delta).has_value());
  EXPECT_EQ(owner.stats().filtered_weight + owner.stats().sketch_weight -
                booked_before,
            true_mass);
}

TEST(SampledIngestTest, DeltaBatchRateOneLeavesPathUntouched) {
  auto owner = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(owner);
  DeltaBatch<CountMin> plain = owner.MakeDeltaBatch();
  DeltaBatch<CountMin> sampled = owner.MakeDeltaBatch();
  sampled.SetTailSampleRate(1.0, /*seed=*/7);
  const std::vector<Tuple> stream = MixedStream(67);
  for (const Tuple& t : stream) {
    plain.Add(t.key, t.value);
    sampled.Add(t.key, t.value);
  }
  EXPECT_EQ(sampled.sampled_skips(), 0u);
  EXPECT_EQ(sampled.tail_weight(), plain.tail_weight());
  auto a = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  auto b = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  WarmHead(a);
  WarmHead(b);
  ASSERT_FALSE(a.ApplyDelta(plain).has_value());
  ASSERT_FALSE(b.ApplyDelta(sampled).has_value());
  BinaryWriter a_bytes;
  BinaryWriter b_bytes;
  ASSERT_TRUE(a.SerializeTo(a_bytes));
  ASSERT_TRUE(b.SerializeTo(b_bytes));
  EXPECT_EQ(a_bytes.buffer(), b_bytes.buffer());
}

}  // namespace
}  // namespace asketch
