// Round-trip and corruption tests for the binary serialization of every
// summary type.

#include "src/common/serialize.h"

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/asketch.h"
#include "src/sketch/dyadic_count_min.h"
#include "src/sketch/holistic_udaf.h"
#include "src/sketch/space_saving.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

std::vector<Tuple> TestStream(uint64_t n = 50000, double skew = 1.3) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = 5000;
  spec.skew = skew;
  spec.seed = 77;
  return GenerateStream(spec);
}

TEST(BinaryWriterReaderTest, PrimitivesRoundTrip) {
  BinaryWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(~uint64_t{0});
  writer.PutI64(-42);
  writer.PutDouble(3.25);
  writer.PutPodVector(std::vector<uint32_t>{1, 2, 3});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(writer.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::vector<uint32_t> vec;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetDouble(&d));
  ASSERT_TRUE(reader.GetPodVector(&vec));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, ~uint64_t{0});
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(vec, (std::vector<uint32_t>{1, 2, 3}));
  // Reading past the end fails.
  EXPECT_FALSE(reader.GetU8(&u8));
  EXPECT_FALSE(reader.ok());
}

TEST(BinaryReaderTest, RejectsOversizedVectors) {
  BinaryWriter writer;
  writer.PutU64(uint64_t{1} << 40);  // absurd element count
  BinaryReader reader(writer.buffer());
  std::vector<uint32_t> vec;
  EXPECT_FALSE(reader.GetPodVector(&vec, /*max_elements=*/1 << 20));
}

template <typename T>
T RoundTrip(const T& original) {
  BinaryWriter writer;
  EXPECT_TRUE(original.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored = T::DeserializeFrom(reader);
  EXPECT_TRUE(restored.has_value());
  return *std::move(restored);
}

TEST(SerializationTest, CountMinRoundTrip) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(16 * 1024, 4, 9));
  for (const Tuple& t : TestStream()) sketch.Update(t.key, t.value);
  const CountMin restored = RoundTrip(sketch);
  for (item_t key = 0; key < 5000; key += 13) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
  }
  EXPECT_EQ(restored.RowSum(0), sketch.RowSum(0));
}

TEST(SerializationTest, CountMinConservativePolicySurvives) {
  CountMinConfig config = CountMinConfig::FromSpaceBudget(8 * 1024, 4, 9);
  config.policy = CmUpdatePolicy::kConservative;
  CountMin sketch(config);
  sketch.Update(1, 10);
  CountMin restored = RoundTrip(sketch);
  EXPECT_EQ(restored.config().policy, CmUpdatePolicy::kConservative);
  restored.Update(1, 5);
  EXPECT_EQ(restored.Estimate(1), 15u);
}

TEST(SerializationTest, SalsaCountMinRoundTrip) {
  SalsaCountMin sketch(SalsaConfig::FromSpaceBudget(16 * 1024, 4, 9));
  for (const Tuple& t : TestStream()) sketch.Update(t.key, t.value);
  ASSERT_GT(sketch.MergedPairs(), 0u);  // layout state must round-trip too
  const SalsaCountMin restored = RoundTrip(sketch);
  EXPECT_EQ(restored.MergedPairs(), sketch.MergedPairs());
  EXPECT_EQ(restored.MergedQuads(), sketch.MergedQuads());
  for (item_t key = 0; key < 5000; key += 13) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
  }
}

TEST(SerializationTest, SalsaCountMinCorruptedInputsYieldNullopt) {
  SalsaCountMin sketch(SalsaConfig::FromSpaceBudget(4 * 1024, 4, 9));
  sketch.Update(1, 5);
  BinaryWriter writer;
  ASSERT_TRUE(sketch.SerializeTo(writer));
  {
    std::vector<uint8_t> bytes = writer.buffer();
    bytes[0] ^= 0xff;  // wrong magic
    BinaryReader reader(bytes);
    EXPECT_FALSE(SalsaCountMin::DeserializeFrom(reader).has_value());
  }
  {
    BinaryReader reader(writer.buffer().data(),
                        writer.buffer().size() / 2);  // truncated
    EXPECT_FALSE(SalsaCountMin::DeserializeFrom(reader).has_value());
  }
  // A plain CountMin blob must not deserialize as a Salsa sketch.
  {
    CountMin cm(CountMinConfig::FromSpaceBudget(4 * 1024, 4, 9));
    BinaryWriter cm_writer;
    ASSERT_TRUE(cm.SerializeTo(cm_writer));
    BinaryReader reader(cm_writer.buffer());
    EXPECT_FALSE(SalsaCountMin::DeserializeFrom(reader).has_value());
  }
}

TEST(SerializationTest, ASketchSalsaRoundTripFullState) {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 3;
  auto as = MakeASketchSalsa<RelaxedHeapFilter>(config);
  for (const Tuple& t : TestStream()) as.Update(t.key, t.value);

  BinaryWriter writer;
  ASSERT_TRUE(as.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored =
      ASketch<RelaxedHeapFilter, SalsaCountMin>::DeserializeFrom(reader);
  ASSERT_TRUE(restored.has_value());
  for (item_t key = 0; key < 5000; key += 3) {
    EXPECT_EQ(restored->Estimate(key), as.Estimate(key));
  }
  EXPECT_EQ(restored->stats().exchanges, as.stats().exchanges);
  // A countmin-backed composite blob must not restore as salsa-backed.
  BinaryReader cross_reader(writer.buffer());
  const auto cross =
      ASketch<RelaxedHeapFilter, CountMin>::DeserializeFrom(cross_reader);
  EXPECT_FALSE(cross.has_value());
}

TEST(SerializationTest, CountSketchRoundTrip) {
  CountSketch sketch(CountSketchConfig::FromSpaceBudget(16 * 1024, 5, 9));
  for (const Tuple& t : TestStream()) sketch.Update(t.key, t.value);
  const CountSketch restored = RoundTrip(sketch);
  for (item_t key = 0; key < 5000; key += 13) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
  }
}

TEST(SerializationTest, FcmRoundTrip) {
  Fcm sketch(FcmConfig::FromSpaceBudget(16 * 1024, 8, 16, 9));
  for (const Tuple& t : TestStream()) sketch.Update(t.key, t.value);
  Fcm restored = RoundTrip(sketch);
  for (item_t key = 0; key < 5000; key += 13) {
    EXPECT_EQ(restored.Estimate(key), sketch.Estimate(key));
    EXPECT_EQ(restored.IsHot(key), sketch.IsHot(key));
  }
  // The restored classifier keeps functioning.
  restored.Update(1, 5);
}

TEST(SerializationTest, MisraGriesRoundTrip) {
  MisraGries mg(16);
  for (const Tuple& t : TestStream(20000)) mg.Update(t.key, t.value);
  const MisraGries restored = RoundTrip(mg);
  EXPECT_EQ(restored.size(), mg.size());
  mg.ForEach([&restored](item_t key, count_t count) {
    EXPECT_EQ(restored.CountOf(key), count);
  });
}

TEST(SerializationTest, SpaceSavingRoundTrip) {
  SpaceSaving ss(32, SpaceSavingEstimateMode::kZero);
  for (const Tuple& t : TestStream(20000)) ss.Update(t.key, t.value);
  const SpaceSaving restored = RoundTrip(ss);
  EXPECT_EQ(restored.Name(), "SpaceSaving(zero)");
  const auto original_top = ss.TopK();
  const auto restored_top = restored.TopK();
  ASSERT_EQ(original_top.size(), restored_top.size());
  for (size_t i = 0; i < original_top.size(); ++i) {
    EXPECT_EQ(original_top[i].key, restored_top[i].key);
    EXPECT_EQ(original_top[i].count, restored_top[i].count);
    EXPECT_EQ(original_top[i].error, restored_top[i].error);
  }
}

TEST(SerializationTest, HolisticUdafRoundTrip) {
  HolisticUdaf udaf(
      HolisticUdafConfig::FromSpaceBudget(16 * 1024, 4, 8, 9));
  for (const Tuple& t : TestStream(20000)) udaf.Update(t.key, t.value);
  const HolisticUdaf restored = RoundTrip(udaf);
  EXPECT_EQ(restored.flush_count(), udaf.flush_count());
  for (item_t key = 0; key < 5000; key += 7) {
    EXPECT_EQ(restored.Estimate(key), udaf.Estimate(key));
  }
}

template <typename T>
class FilterSerializationTest : public ::testing::Test {};

using FilterTypes = ::testing::Types<VectorFilter, StrictHeapFilter,
                                     RelaxedHeapFilter, StreamSummaryFilter>;
TYPED_TEST_SUITE(FilterSerializationTest, FilterTypes);

TYPED_TEST(FilterSerializationTest, RoundTripPreservesEntriesAndMin) {
  TypeParam filter(16);
  for (item_t key = 0; key < 12; ++key) {
    filter.Insert(key * 31 + 5, (key + 3) * 7, key);
  }
  BinaryWriter writer;
  ASSERT_TRUE(filter.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored = TypeParam::DeserializeFrom(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->size(), filter.size());
  EXPECT_EQ(restored->capacity(), filter.capacity());
  EXPECT_EQ(restored->MinNewCount(), filter.MinNewCount());
  for (item_t key = 0; key < 12; ++key) {
    const int32_t slot = restored->Find(key * 31 + 5);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(restored->NewCount(slot), (key + 3) * 7);
    EXPECT_EQ(restored->OldCount(slot), key);
  }
}

TEST(SerializationTest, ASketchRoundTripFullState) {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 3;
  auto as = MakeASketchCountMin<RelaxedHeapFilter>(config);
  for (const Tuple& t : TestStream()) as.Update(t.key, t.value);

  BinaryWriter writer;
  ASSERT_TRUE(as.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored =
      ASketch<RelaxedHeapFilter, CountMin>::DeserializeFrom(reader);
  ASSERT_TRUE(restored.has_value());
  for (item_t key = 0; key < 5000; key += 3) {
    EXPECT_EQ(restored->Estimate(key), as.Estimate(key));
  }
  EXPECT_EQ(restored->stats().exchanges, as.stats().exchanges);
  EXPECT_EQ(restored->stats().filtered_weight,
            as.stats().filtered_weight);
  // The restored instance keeps processing correctly.
  restored->Update(42, 5);
  EXPECT_GE(restored->Estimate(42), as.Estimate(42) + 5);
}

template <typename T>
class ASketchSerializationTest : public ::testing::Test {};

using AllFilterTypes =
    ::testing::Types<VectorFilter, StrictHeapFilter, RelaxedHeapFilter,
                     StreamSummaryFilter>;
TYPED_TEST_SUITE(ASketchSerializationTest, AllFilterTypes);

TYPED_TEST(ASketchSerializationTest, RoundTripsWithEveryFilterDesign) {
  ASketchConfig config;
  config.total_bytes = 8 * 1024;
  config.width = 4;
  config.filter_items = 8;
  config.seed = 13;
  auto as = MakeASketchCountMin<TypeParam>(config);
  for (const Tuple& t : TestStream(20000)) as.Update(t.key, t.value);
  BinaryWriter writer;
  ASSERT_TRUE(as.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored = ASketch<TypeParam, CountMin>::DeserializeFrom(reader);
  ASSERT_TRUE(restored.has_value());
  for (item_t key = 0; key < 5000; key += 7) {
    ASSERT_EQ(restored->Estimate(key), as.Estimate(key)) << "key " << key;
  }
  // A filter blob from one design must not deserialize as another.
  BinaryReader cross_reader(writer.buffer());
  if constexpr (!std::is_same_v<TypeParam, VectorFilter>) {
    using VectorASketch = ASketch<VectorFilter, CountMin>;
    const auto cross = VectorASketch::DeserializeFrom(cross_reader);
    EXPECT_FALSE(cross.has_value());
  }
}

TEST(SerializationTest, ASketchRoundTripThroughFile) {
  ASketchConfig config;
  config.total_bytes = 8 * 1024;
  config.width = 4;
  config.filter_items = 8;
  auto as = MakeASketchCountMin<VectorFilter>(config);
  for (const Tuple& t : TestStream(10000)) as.Update(t.key, t.value);

  const std::string path = testing::TempDir() + "/asketch.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    BinaryWriter writer(f);
    ASSERT_TRUE(as.SerializeTo(writer));
    std::fclose(f);
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    BinaryReader reader(f);
    auto restored =
        ASketch<VectorFilter, CountMin>::DeserializeFrom(reader);
    std::fclose(f);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(restored->Estimate(1), as.Estimate(1));
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, DyadicCountMinRoundTrip) {
  DyadicCountMinConfig config;
  config.domain_bits = 16;
  config.width = 4;
  config.total_bytes = 64 * 1024;
  config.seed = 9;
  DyadicCountMin sketch(config);
  for (const Tuple& t : TestStream(20000)) {
    sketch.Update(t.key % (1 << 16), t.value);
  }
  BinaryWriter writer;
  ASSERT_TRUE(sketch.SerializeTo(writer));
  BinaryReader reader(writer.buffer());
  auto restored = DyadicCountMin::DeserializeFrom(reader);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->Total(), sketch.Total());
  for (item_t lo = 0; lo < (1 << 16); lo += 4099) {
    const item_t hi = std::min<item_t>(lo + 1000, (1 << 16) - 1);
    EXPECT_EQ(restored->RangeSum(lo, hi), sketch.RangeSum(lo, hi));
  }
}

TEST(SerializationTest, CorruptedInputsYieldNullopt) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(4 * 1024, 4, 9));
  sketch.Update(1, 5);
  BinaryWriter writer;
  ASSERT_TRUE(sketch.SerializeTo(writer));
  // Wrong magic.
  {
    std::vector<uint8_t> bytes = writer.buffer();
    bytes[0] ^= 0xff;
    BinaryReader reader(bytes);
    EXPECT_FALSE(CountMin::DeserializeFrom(reader).has_value());
  }
  // Truncated.
  {
    BinaryReader reader(writer.buffer().data(),
                        writer.buffer().size() / 2);
    EXPECT_FALSE(CountMin::DeserializeFrom(reader).has_value());
  }
  // Cross-type confusion: a CountMin blob is not a CountSketch.
  {
    BinaryReader reader(writer.buffer());
    EXPECT_FALSE(CountSketch::DeserializeFrom(reader).has_value());
  }
}

}  // namespace
}  // namespace asketch
