#include "src/common/simd_scan.h"

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bit_util.h"
#include "src/common/random.h"

namespace asketch {
namespace {

// Runs every compiled FindKey variant and checks they agree with the
// scalar reference.
int32_t FindKeyAllVariants(const std::vector<uint32_t>& ids, size_t n,
                           uint32_t key) {
  const int32_t scalar = FindKeyScalar(ids.data(), n, key);
#if defined(__SSE2__)
  EXPECT_EQ(FindKeySse2(ids.data(), ids.size(), n, key), scalar);
#endif
#if defined(__AVX2__)
  EXPECT_EQ(FindKeyAvx2(ids.data(), ids.size(), n, key), scalar);
#endif
  EXPECT_EQ(FindKey(ids.data(), ids.size(), n, key), scalar);
  return scalar;
}

TEST(SimdScanTest, FindsEveryPosition) {
  std::vector<uint32_t> ids(64);
  for (size_t i = 0; i < 64; ++i) ids[i] = 1000 + i;
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(FindKeyAllVariants(ids, 64, 1000 + i),
              static_cast<int32_t>(i));
  }
}

TEST(SimdScanTest, MissingKeyReturnsMinusOne) {
  std::vector<uint32_t> ids(32, 7);
  EXPECT_EQ(FindKeyAllVariants(ids, 32, 8), -1);
}

TEST(SimdScanTest, FirstMatchWinsOnDuplicates) {
  std::vector<uint32_t> ids(32, 0);
  ids[5] = 42;
  ids[20] = 42;
  EXPECT_EQ(FindKeyAllVariants(ids, 32, 42), 5);
}

TEST(SimdScanTest, MatchInPaddingIsIgnored) {
  // Capacity 32, logical size 10; the padding holds the searched key.
  std::vector<uint32_t> ids(32, /*pad value=*/99);
  for (size_t i = 0; i < 10; ++i) ids[i] = i;
  EXPECT_EQ(FindKeyAllVariants(ids, 10, 99), -1);
}

TEST(SimdScanTest, LogicalMatchBeatsPaddingMatch) {
  // Padding (indices >= 4) is full of 77; the only logical 77 is at 3.
  std::vector<uint32_t> ids(32, 77);
  ids[0] = 0;
  ids[1] = 1;
  ids[2] = 2;
  EXPECT_EQ(FindKeyAllVariants(ids, 4, 77), 3);
}

TEST(SimdScanTest, ZeroKeyAndMaxKeyWork) {
  std::vector<uint32_t> ids(16, 1);
  ids[7] = 0;
  ids[9] = std::numeric_limits<uint32_t>::max();
  EXPECT_EQ(FindKeyAllVariants(ids, 16, 0), 7);
  EXPECT_EQ(FindKeyAllVariants(ids, 16, ~0u), 9);
}

TEST(SimdScanTest, EmptyLogicalRangeNeverMatches) {
  std::vector<uint32_t> ids(16, 5);
  EXPECT_EQ(FindKeyAllVariants(ids, 0, 5), -1);
}

class SimdScanRandomizedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SimdScanRandomizedTest, AgreesWithScalarOnRandomArrays) {
  const size_t n = GetParam();
  const size_t padded = RoundUp(std::max<size_t>(n, 1), kSimdBlockElements);
  Rng rng(n * 7919 + 3);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint32_t> ids(padded);
    for (auto& id : ids) {
      id = static_cast<uint32_t>(rng.NextBounded(64));  // force duplicates
    }
    for (uint32_t key = 0; key < 64; ++key) {
      FindKeyAllVariants(ids, n, key);  // EXPECTs run inside
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimdScanRandomizedTest,
                         ::testing::Values(1, 7, 15, 16, 17, 31, 32, 48, 64,
                                           100, 128, 1024));

TEST(MinIndexTest, FindsTheMinimum) {
  std::vector<uint32_t> counts = {5, 3, 9, 3, 7, 1, 8, 1,
                                  5, 3, 9, 3, 7, 2, 8, 2};
  EXPECT_EQ(MinIndexScalar(counts.data(), counts.size()), 5u);
  EXPECT_EQ(MinIndex(counts.data(), counts.size(), counts.size()), 5u);
}

TEST(MinIndexTest, SingleElement) {
  std::vector<uint32_t> counts(16, ~0u);
  counts[0] = 42;
  EXPECT_EQ(MinIndex(counts.data(), 16, 1), 0u);
}

class MinIndexRandomizedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MinIndexRandomizedTest, AgreesWithScalarOnRandomArrays) {
  const size_t n = GetParam();
  const size_t padded = RoundUp(n, kSimdBlockElements);
  Rng rng(n * 104729 + 1);
  for (int round = 0; round < 100; ++round) {
    std::vector<uint32_t> counts(padded, ~0u);
    for (size_t i = 0; i < n; ++i) {
      counts[i] = static_cast<uint32_t>(rng.NextBounded(1000));
    }
    const size_t expected = MinIndexScalar(counts.data(), n);
    const size_t got = MinIndex(counts.data(), padded, n);
    // Both must locate a cell holding the minimum value; the scalar
    // reference returns the first one, and so must the vector version.
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MinIndexRandomizedTest,
                         ::testing::Values(1, 2, 8, 15, 16, 17, 32, 33, 64,
                                           100, 256));

TEST(MinIndexTest, AllEqualValuesReturnsFirst) {
  std::vector<uint32_t> counts(32, 5);
  EXPECT_EQ(MinIndex(counts.data(), 32, 32), 0u);
}

}  // namespace
}  // namespace asketch
