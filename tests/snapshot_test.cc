// Snapshot envelope, CRC32C, atomic write, generation store, and
// deterministic fault-injection tests.

#include "src/common/snapshot.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/crc32c.h"
#include "src/common/fault_injection.h"
#include "src/common/random.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"

namespace asketch {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the gtest temp root.
std::string TestDir(const std::string& name) {
  const fs::path dir = fs::path(testing::TempDir()) / ("snapshot_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<uint8_t> SamplePayload(size_t size) {
  std::vector<uint8_t> payload(size);
  for (size_t i = 0; i < size; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + 7);
  }
  return payload;
}

TEST(Crc32cTest, KnownAnswer) {
  // The CRC32C check value from RFC 3720 / the Castagnoli paper.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32cReference("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), Crc32cReference(nullptr, 0));
}

TEST(Crc32cTest, HardwareMatchesReferenceOnRandomBuffers) {
  Rng rng(2024);
  // Cover all alignments and tail lengths around the 8-byte chunk size.
  for (size_t size = 0; size < 100; ++size) {
    std::vector<uint8_t> data(size);
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));
    EXPECT_EQ(Crc32c(data.data(), size), Crc32cReference(data.data(), size))
        << "size " << size;
  }
}

TEST(SnapshotEnvelopeTest, RoundTrip) {
  const auto payload = SamplePayload(100);
  const auto envelope = WrapSnapshot(/*payload_type=*/42, payload);
  ASSERT_EQ(envelope.size(), kSnapshotHeaderBytes + payload.size());
  const auto back = UnwrapSnapshot(envelope.data(), envelope.size(), 42);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(SnapshotEnvelopeTest, EmptyPayloadRoundTrips) {
  const auto envelope = WrapSnapshot(7, {});
  const auto back = UnwrapSnapshot(envelope.data(), envelope.size(), 7);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(SnapshotEnvelopeTest, WrongTypeTagRejected) {
  const auto envelope = WrapSnapshot(42, SamplePayload(16));
  EXPECT_FALSE(
      UnwrapSnapshot(envelope.data(), envelope.size(), 43).has_value());
}

TEST(SnapshotEnvelopeTest, EverySingleBitFlipRejected) {
  // The acceptance bar of this format: ANY flipped bit — header or
  // payload — must be rejected. Exhaustive over a small envelope.
  const auto payload = SamplePayload(48);
  const auto envelope = WrapSnapshot(42, payload);
  for (size_t byte = 0; byte < envelope.size(); ++byte) {
    for (uint32_t bit = 0; bit < 8; ++bit) {
      auto corrupted = envelope;
      corrupted[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(
          UnwrapSnapshot(corrupted.data(), corrupted.size(), 42).has_value())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SnapshotEnvelopeTest, EveryTruncationRejected) {
  const auto envelope = WrapSnapshot(42, SamplePayload(32));
  for (size_t size = 0; size < envelope.size(); ++size) {
    EXPECT_FALSE(UnwrapSnapshot(envelope.data(), size, 42).has_value())
        << "truncated to " << size;
  }
}

TEST(SnapshotEnvelopeTest, TrailingBytesRejected) {
  auto envelope = WrapSnapshot(42, SamplePayload(32));
  envelope.push_back(0);
  EXPECT_FALSE(
      UnwrapSnapshot(envelope.data(), envelope.size(), 42).has_value());
}

TEST(SnapshotEnvelopeTest, TypedRoundTripAndCrossTypeRejection) {
  CountMin sketch(CountMinConfig::FromSpaceBudget(4096, 4, 99));
  for (item_t key = 0; key < 500; ++key) sketch.Update(key, key % 7 + 1);
  const auto snapshot = ToSnapshot(sketch);
  ASSERT_FALSE(snapshot.empty());

  const auto back = FromSnapshot<CountMin>(snapshot.data(), snapshot.size());
  ASSERT_TRUE(back.has_value());
  for (item_t key = 0; key < 500; ++key) {
    EXPECT_EQ(back->Estimate(key), sketch.Estimate(key));
  }
  // The same bytes presented as a different summary type must fail on
  // the envelope's type tag, before any deserialization runs.
  EXPECT_FALSE(
      FromSnapshot<CountSketch>(snapshot.data(), snapshot.size()).has_value());
}

TEST(WriteFileAtomicTest, WritesAndKeepsOldContentOnFailure) {
  const std::string dir = TestDir("atomic");
  const std::string path = dir + "/file.bin";
  const std::vector<uint8_t> first{1, 2, 3, 4};
  ASSERT_FALSE(WriteFileAtomic(path, first).has_value());
  EXPECT_EQ(ReadFileBytes(path), first);

  // A failing write must leave the published file untouched and clean up
  // its temp file.
  FaultInjectingIo faults;
  faults.ArmWriteErrorAt(0);
  const std::vector<uint8_t> second{9, 9, 9};
  EXPECT_TRUE(WriteFileAtomic(path, second, faults.Hooks()).has_value());
  EXPECT_EQ(ReadFileBytes(path), first);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(SnapshotStoreTest, SaveLoadAndRetention) {
  const std::string dir = TestDir("retention");
  SnapshotStore store(dir + "/ck", /*retain=*/3);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_FALSE(
        store.Save(42, SamplePayload(static_cast<size_t>(i) * 10))
            .has_value())
        << "generation " << i;
  }
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{3, 4, 5}));
  EXPECT_EQ(store.LatestGeneration(), 5u);

  const auto loaded = store.Load(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 5u);
  EXPECT_EQ(loaded->generations_skipped, 0u);
  EXPECT_EQ(loaded->payload, SamplePayload(50));
}

TEST(SnapshotStoreTest, LoadOnEmptyStoreFails) {
  const std::string dir = TestDir("empty");
  SnapshotStore store(dir + "/ck");
  std::string error;
  EXPECT_FALSE(store.Load(42, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SnapshotStoreTest, SaveCreatesMissingDirectory) {
  const std::string dir = TestDir("mkdir");
  SnapshotStore store(dir + "/nested/deeper/ck");
  ASSERT_FALSE(store.Save(42, SamplePayload(8)).has_value());
  ASSERT_TRUE(store.Load(42).has_value());
}

TEST(SnapshotStoreTest, CorruptNewestFallsBackToPreviousGeneration) {
  const std::string dir = TestDir("fallback");
  SnapshotStore store(dir + "/ck");
  ASSERT_FALSE(store.Save(42, SamplePayload(10)).has_value());
  ASSERT_FALSE(store.Save(42, SamplePayload(20)).has_value());

  // Flip one payload bit of the newest generation directly on disk.
  const std::string newest = store.GenerationPath(2);
  auto bytes = ReadFileBytes(newest);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[kSnapshotHeaderBytes + 3] ^= 0x10;
  std::FILE* f = std::fopen(newest.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes->data(), 1, bytes->size(), f), bytes->size());
  std::fclose(f);

  const auto loaded = store.Load(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->generations_skipped, 1u);
  EXPECT_EQ(loaded->payload, SamplePayload(10));
}

TEST(SnapshotStoreTest, AllGenerationsCorruptFailsWithError) {
  const std::string dir = TestDir("allbad");
  SnapshotStore store(dir + "/ck");
  ASSERT_FALSE(store.Save(42, SamplePayload(10)).has_value());
  // Type confusion counts as corruption: nothing validates under tag 43.
  std::string error;
  EXPECT_FALSE(store.Load(43, &error).has_value());
  EXPECT_NE(error.find("corrupt"), std::string::npos);
}

TEST(FaultInjectionTest, CommitCrashLeavesPreviousGenerationIntact) {
  const std::string dir = TestDir("commit_crash");
  FaultInjectingIo faults;
  faults.ArmCommitCrashAt(1);  // second Save's rename "crashes"
  SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
  ASSERT_FALSE(store.Save(42, SamplePayload(10)).has_value());
  EXPECT_TRUE(store.Save(42, SamplePayload(20)).has_value());

  // The crash left a stray temp file, not a published generation …
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  EXPECT_TRUE(fs::exists(store.GenerationPath(2) + ".tmp"));
  // … and recovery finds the previous intact generation.
  const auto loaded = store.Load(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->payload, SamplePayload(10));
}

TEST(FaultInjectionTest, ShortWriteFailsSaveAndKeepsStoreUsable) {
  const std::string dir = TestDir("short_write");
  FaultInjectingIo faults;
  faults.ArmShortWriteAt(1);
  SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
  ASSERT_FALSE(store.Save(42, SamplePayload(10)).has_value());
  EXPECT_TRUE(store.Save(42, SamplePayload(20)).has_value());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1}));
  // The store keeps working after the fault passes.
  ASSERT_FALSE(store.Save(42, SamplePayload(30)).has_value());
  const auto loaded = store.Load(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->payload, SamplePayload(30));
}

TEST(FaultInjectionTest, WriteErrorFailsSave) {
  const std::string dir = TestDir("write_error");
  FaultInjectingIo faults;
  faults.ArmWriteErrorAt(0);
  SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
  EXPECT_TRUE(store.Save(42, SamplePayload(10)).has_value());
  EXPECT_TRUE(store.ListGenerations().empty());
}

TEST(FaultInjectionTest, SyncErrorFailsSave) {
  const std::string dir = TestDir("sync_error");
  FaultInjectingIo faults;
  faults.ArmSyncErrorAt(0);
  SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
  EXPECT_TRUE(store.Save(42, SamplePayload(10)).has_value());
  EXPECT_TRUE(store.ListGenerations().empty());
}

TEST(FaultInjectionTest, OnMediaBitFlipCaughtAtLoadTime) {
  const std::string dir = TestDir("bit_rot");
  FaultInjectingIo faults;
  // Corrupt one payload byte of the second snapshot on its way to disk;
  // the write itself "succeeds", so Save cannot notice.
  faults.ArmBitFlip(/*index=*/1, /*byte_offset=*/kSnapshotHeaderBytes + 5,
                    /*bit=*/2);
  SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
  ASSERT_FALSE(store.Save(42, SamplePayload(10)).has_value());
  ASSERT_FALSE(store.Save(42, SamplePayload(20)).has_value());
  EXPECT_EQ(store.ListGenerations(), (std::vector<uint64_t>{1, 2}));

  const auto loaded = store.Load(42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->generations_skipped, 1u);
  EXPECT_EQ(loaded->payload, SamplePayload(10));
}

TEST(FaultInjectionTest, SeededHeaderFlipScheduleAlwaysRecovers) {
  // A seeded schedule of random single-bit flips, one per save: whatever
  // the flip hits (magic, version, tag, length, CRC, payload), Load must
  // either return an intact older generation or fail cleanly — never
  // return corrupt bytes.
  Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    const std::string dir =
        TestDir("seeded_" + std::to_string(round));
    FaultInjectingIo faults;
    const auto payload = SamplePayload(64);
    const size_t envelope_size = kSnapshotHeaderBytes + payload.size();
    faults.ArmBitFlip(1, rng.NextBounded(envelope_size),
                      static_cast<uint32_t>(rng.NextBounded(8)));
    SnapshotStore store(dir + "/ck", /*retain=*/3, faults.Hooks());
    ASSERT_FALSE(store.Save(42, payload).has_value());
    ASSERT_FALSE(store.Save(42, SamplePayload(64)).has_value());
    const auto loaded = store.Load(42);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->generation, 1u);
    EXPECT_EQ(loaded->payload, payload);
  }
}

}  // namespace
}  // namespace asketch
