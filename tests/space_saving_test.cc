#include "src/sketch/space_saving.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

TEST(SpaceSavingTest, ExactWhileNotFull) {
  SpaceSaving ss(8);
  ss.Update(1);
  ss.Update(1);
  ss.Update(2);
  EXPECT_EQ(ss.Estimate(1), 2u);
  EXPECT_EQ(ss.Estimate(2), 1u);
  EXPECT_EQ(ss.size(), 2u);
}

TEST(SpaceSavingTest, EvictionInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Update(1, 10);
  ss.Update(2, 5);
  ss.Update(3);  // evicts key 2 (count 5); key 3 gets count 6, error 5
  EXPECT_FALSE(ss.Contains(2));
  EXPECT_TRUE(ss.Contains(3));
  EXPECT_EQ(ss.Estimate(3), 6u);
  const auto top = ss.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_EQ(top[1].error, 5u);
}

TEST(SpaceSavingTest, MonitoredCountsAreUpperBounds) {
  SpaceSaving ss(16);
  ExactCounter truth(500);
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(500));
    ss.Update(key);
    truth.Update(key);
  }
  for (const SpaceSavingEntry& e : ss.TopK()) {
    EXPECT_GE(e.count, truth.Count(e.key));
    EXPECT_LE(e.count - e.error, truth.Count(e.key));
  }
}

TEST(SpaceSavingTest, GuaranteedHeavyHittersAreMonitored) {
  // Any key with frequency > N/k must be monitored.
  const uint32_t k = 10;
  SpaceSaving ss(k);
  ExactCounter truth(100);
  StreamSpec spec;
  spec.stream_size = 20000;
  spec.num_distinct = 100;
  spec.skew = 1.4;
  spec.seed = 77;
  for (const Tuple& t : GenerateStream(spec)) {
    ss.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 100; ++key) {
    if (truth.Count(key) > truth.Total() / k) {
      EXPECT_TRUE(ss.Contains(key)) << "heavy key " << key;
    }
  }
}

TEST(SpaceSavingTest, MinAndZeroModesForUnmonitoredKeys) {
  SpaceSaving min_mode(2, SpaceSavingEstimateMode::kMin);
  SpaceSaving zero_mode(2, SpaceSavingEstimateMode::kZero);
  for (const auto& [key, weight] :
       std::vector<std::pair<item_t, count_t>>{{1, 10}, {2, 7}}) {
    min_mode.Update(key, weight);
    zero_mode.Update(key, weight);
  }
  EXPECT_EQ(min_mode.Estimate(999), 7u);   // the minimum counter
  EXPECT_EQ(zero_mode.Estimate(999), 0u);
}

TEST(SpaceSavingTest, MinModeNeverUnderestimates) {
  SpaceSaving ss(8, SpaceSavingEstimateMode::kMin);
  ExactCounter truth(200);
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(200));
    ss.Update(key);
    truth.Update(key);
  }
  for (item_t key = 0; key < 200; ++key) {
    EXPECT_GE(ss.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

TEST(SpaceSavingTest, TopKSortedDescending) {
  SpaceSaving ss(8);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    ss.Update(static_cast<item_t>(rng.NextBounded(20)));
  }
  const auto top = ss.TopK();
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSavingTest, RejectsNonPositiveWeights) {
  SpaceSaving ss(4);
  ss.Update(1, 5);
  EXPECT_DEATH(ss.Update(1, 0), "weight");
  EXPECT_DEATH(ss.Update(1, -1), "weight");
}

TEST(SpaceSavingTest, ResetEmptiesSummary) {
  SpaceSaving ss(4);
  ss.Update(1, 5);
  ss.Reset();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.Estimate(1), 0u);
}

TEST(SpaceSavingTest, MemoryAccountingReflectsPointerOverhead) {
  // The stream-summary structure costs several times the flat 12 B/item.
  EXPECT_GE(SpaceSaving::BytesPerItem(), 40u);
  SpaceSaving ss(32);
  EXPECT_EQ(ss.MemoryUsageBytes(), 32 * SpaceSaving::BytesPerItem());
}

}  // namespace
}  // namespace asketch
