// SPMD kernel groups (§6.3).

#include "src/core/spmd_group.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 9;
  return config;
}

std::vector<Tuple> TestStream(double skew, uint64_t n = 100000) {
  StreamSpec spec;
  spec.stream_size = n;
  spec.num_distinct = 2000;
  spec.skew = skew;
  spec.seed = 99;
  return GenerateStream(spec);
}

TEST(SpmdGroupTest, SingleKernelMatchesSequentialASketch) {
  const std::vector<Tuple> stream = TestStream(1.2);
  SpmdAsketchGroup group(1, SmallConfig());
  group.Process(stream);
  auto sequential = MakeASketchCountMin<RelaxedHeapFilter>(SmallConfig());
  for (const Tuple& t : stream) sequential.Update(t.key, t.value);
  for (item_t key = 0; key < 2000; key += 7) {
    EXPECT_EQ(group.Estimate(key), sequential.Estimate(key))
        << "key " << key;
  }
}

class SpmdKernelCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SpmdKernelCountTest, SumOfEstimatesNeverUnderestimates) {
  const uint32_t kernels = GetParam();
  const std::vector<Tuple> stream = TestStream(1.0);
  ExactCounter truth(2000);
  for (const Tuple& t : stream) truth.Update(t.key, t.value);
  SpmdAsketchGroup group(kernels, SmallConfig());
  group.Process(stream);
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(group.Estimate(key), truth.Count(key))
        << "key " << key << " kernels " << kernels;
  }
}

TEST_P(SpmdKernelCountTest, CountMinGroupNeverUnderestimates) {
  const uint32_t kernels = GetParam();
  const std::vector<Tuple> stream = TestStream(0.8);
  ExactCounter truth(2000);
  for (const Tuple& t : stream) truth.Update(t.key, t.value);
  SpmdCountMinGroup group(kernels,
                          CountMinConfig::FromSpaceBudget(16 * 1024, 4));
  group.Process(stream);
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(group.Estimate(key), truth.Count(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(KernelCounts, SpmdKernelCountTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(SpmdGroupTest, EstimatesAreReasonablyTight) {
  // Sum of per-kernel over-estimates should stay close to the truth on a
  // skewed stream (each kernel's filter catches its local hot keys).
  const std::vector<Tuple> stream = TestStream(1.5, 200000);
  ExactCounter truth(2000);
  for (const Tuple& t : stream) truth.Update(t.key, t.value);
  SpmdAsketchGroup group(4, SmallConfig());
  group.Process(stream);
  // The hottest key is exactly tracked by at least one kernel's filter.
  item_t hottest = 0;
  for (item_t key = 1; key < 2000; ++key) {
    if (truth.Count(key) > truth.Count(hottest)) hottest = key;
  }
  const double est = static_cast<double>(group.Estimate(hottest));
  const double t = static_cast<double>(truth.Count(hottest));
  EXPECT_LE(est, t * 1.2 + 100);
}

TEST(SpmdGroupTest, RepeatedProcessCallsAccumulate) {
  SpmdAsketchGroup group(2, SmallConfig());
  const std::vector<Tuple> stream = {{1, 1}, {1, 1}, {2, 1}, {1, 1}};
  group.Process(stream);
  group.Process(stream);
  EXPECT_GE(group.Estimate(1), 6u);
  EXPECT_GE(group.Estimate(2), 2u);
}

TEST(SpmdGroupTest, EmptyStreamIsFine) {
  SpmdAsketchGroup group(3, SmallConfig());
  group.Process({});
  EXPECT_EQ(group.Estimate(1), 0u);
}

TEST(SpmdGroupTest, MoreKernelsThanTuples) {
  SpmdAsketchGroup group(8, SmallConfig());
  const std::vector<Tuple> stream = {{5, 1}, {6, 1}};
  group.Process(stream);
  EXPECT_EQ(group.Estimate(5), 1u);
  EXPECT_EQ(group.Estimate(6), 1u);
}

TEST(SpmdGroupTest, MemoryScalesWithKernelCount) {
  SpmdAsketchGroup one(1, SmallConfig());
  SpmdAsketchGroup four(4, SmallConfig());
  EXPECT_EQ(four.MemoryUsageBytes(), 4 * one.MemoryUsageBytes());
}

}  // namespace
}  // namespace asketch
