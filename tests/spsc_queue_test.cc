#include "src/core/spsc_queue.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace asketch {
namespace {

TEST(SpscQueueTest, StartsEmpty) {
  SpscQueue<int> queue(8);
  EXPECT_TRUE(queue.Empty());
  int value = 0;
  EXPECT_FALSE(queue.TryPop(&value));
}

TEST(SpscQueueTest, PushPopSingleElement) {
  SpscQueue<int> queue(8);
  EXPECT_TRUE(queue.TryPush(42));
  EXPECT_FALSE(queue.Empty());
  int value = 0;
  ASSERT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.TryPush(i));
  }
  for (int i = 0; i < 10; ++i) {
    int value = -1;
    ASSERT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
  }
}

TEST(SpscQueueTest, FillsUpAndRejects) {
  SpscQueue<int> queue(4);
  int pushed = 0;
  while (queue.TryPush(pushed)) ++pushed;
  // Rounded to a power of two minus the sacrificed slot: at least the
  // requested capacity fits.
  EXPECT_GE(pushed, 4);
  int value;
  ASSERT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(queue.TryPush(999));  // space freed
}

TEST(SpscQueueTest, WrapAroundManyTimes) {
  SpscQueue<uint32_t> queue(8);
  uint32_t next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (queue.TryPush(next_push)) ++next_push;
    uint32_t value;
    while (queue.TryPop(&value)) {
      ASSERT_EQ(value, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_GT(next_push, 1000u);
}

TEST(SpscQueueTest, TwoThreadStressPreservesSequence) {
  SpscQueue<uint64_t> queue(64);
  // Modest count: on a single hardware thread the producer's failed
  // pushes must yield to let the consumer run at all.
  constexpr uint64_t kCount = 100'000;
  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!queue.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 0;
  uint64_t checksum = 0;
  while (expected < kCount) {
    uint64_t value;
    if (queue.TryPop(&value)) {
      ASSERT_EQ(value, expected);
      checksum += value;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(checksum, kCount * (kCount - 1) / 2);
}

TEST(SpscQueueTest, StructPayloads) {
  struct Message {
    uint8_t kind;
    uint32_t key;
    uint32_t weight;
  };
  SpscQueue<Message> queue(8);
  ASSERT_TRUE(queue.TryPush(Message{1, 42, 7}));
  Message out{0, 0, 0};
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out.kind, 1);
  EXPECT_EQ(out.key, 42u);
  EXPECT_EQ(out.weight, 7u);
}

}  // namespace
}  // namespace asketch
