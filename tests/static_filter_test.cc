#include "src/filter/static_vector_filter.h"

#include <map>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/asketch.h"
#include "src/filter/vector_filter.h"
#include "src/workload/exact_counter.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

TEST(StaticVectorFilterTest, BasicInsertFindEvict) {
  StaticVectorFilter<16> filter;
  filter.Insert(10, 5, 2);
  filter.Insert(20, 3, 0);
  EXPECT_EQ(filter.size(), 2u);
  EXPECT_EQ(filter.capacity(), 16u);
  const int32_t slot = filter.Find(10);
  ASSERT_GE(slot, 0);
  EXPECT_EQ(filter.NewCount(slot), 5u);
  EXPECT_EQ(filter.MinNewCount(), 3u);
  const FilterEntry evicted = filter.EvictMin();
  EXPECT_EQ(evicted.key, 20u);
  EXPECT_EQ(filter.size(), 1u);
}

TEST(StaticVectorFilterTest, RejectsMismatchedRuntimeCapacity) {
  EXPECT_DEATH(StaticVectorFilter<16>(8), "capacity == kItems");
}

TEST(StaticVectorFilterTest, BehavesExactlyLikeDynamicVectorFilter) {
  // Differential fuzz: the static filter must be operation-for-operation
  // identical to VectorFilter (same slot layout, same evictions).
  StaticVectorFilter<32> static_filter;
  VectorFilter dynamic_filter(32);
  Rng rng(99);
  for (int step = 0; step < 20000; ++step) {
    const item_t key = static_cast<item_t>(rng.NextBounded(128));
    const int32_t a = static_filter.Find(key);
    const int32_t b = dynamic_filter.Find(key);
    ASSERT_EQ(a, b) << "step " << step;
    if (a >= 0) {
      const delta_t delta = 1 + static_cast<delta_t>(rng.NextBounded(7));
      static_filter.AddToNewCount(a, delta);
      dynamic_filter.AddToNewCount(b, delta);
    } else if (!static_filter.Full()) {
      const count_t c = 1 + static_cast<count_t>(rng.NextBounded(50));
      static_filter.Insert(key, c, 0);
      dynamic_filter.Insert(key, c, 0);
    } else {
      ASSERT_EQ(static_filter.MinNewCount(), dynamic_filter.MinNewCount());
      if (rng.NextBounded(2) == 0) {
        const FilterEntry sa = static_filter.EvictMin();
        const FilterEntry da = dynamic_filter.EvictMin();
        ASSERT_EQ(sa, da) << "step " << step;
        static_filter.Insert(key, sa.new_count + 1, sa.new_count + 1);
        dynamic_filter.Insert(key, da.new_count + 1, da.new_count + 1);
      }
    }
    ASSERT_EQ(static_filter.size(), dynamic_filter.size());
  }
}

TEST(StaticVectorFilterTest, ComposesWithASketch) {
  using StaticASketch = ASketch<StaticVectorFilter<32>, CountMin>;
  const CountMinConfig sketch_config =
      CountMinConfig::FromSpaceBudget(16 * 1024, 4, 7);
  StaticASketch as{StaticVectorFilter<32>(), CountMin(sketch_config)};
  ExactCounter truth(2000);
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 2000;
  spec.skew = 1.3;
  spec.seed = 17;
  for (const Tuple& t : GenerateStream(spec)) {
    as.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (item_t key = 0; key < 2000; ++key) {
    ASSERT_GE(as.Estimate(key), truth.Count(key)) << "key " << key;
  }
  EXPECT_EQ(as.Name(), "ASketch<StaticVector<32>,CountMin>");
}

TEST(StaticVectorFilterTest, MemoryIsInlineAndCompact) {
  EXPECT_EQ(StaticVectorFilter<32>::BytesPerItem(), 12u);
  EXPECT_EQ(StaticVectorFilter<32>().MemoryUsageBytes(), 384u);
  // No heap allocations: the object itself holds the arrays.
  EXPECT_GE(sizeof(StaticVectorFilter<32>), 3u * 32u * 4u);
}

TEST(StaticVectorFilterTest, ResetAndReuse) {
  StaticVectorFilter<16> filter;
  for (item_t key = 0; key < 16; ++key) filter.Insert(key, key + 1, 0);
  EXPECT_TRUE(filter.Full());
  filter.Reset();
  EXPECT_EQ(filter.size(), 0u);
  filter.Insert(5, 9, 0);
  EXPECT_EQ(filter.MinNewCount(), 9u);
}

}  // namespace
}  // namespace asketch
