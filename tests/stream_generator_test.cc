#include "src/workload/stream_generator.h"

#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "src/workload/trace_simulators.h"

namespace asketch {
namespace {

StreamSpec SmallSpec() {
  StreamSpec spec;
  spec.stream_size = 20000;
  spec.num_distinct = 500;
  spec.skew = 1.2;
  spec.seed = 7;
  return spec;
}

TEST(StreamSpecTest, Validates) {
  StreamSpec spec = SmallSpec();
  EXPECT_FALSE(spec.Validate().has_value());
  spec.stream_size = 0;
  EXPECT_TRUE(spec.Validate().has_value());
  spec = SmallSpec();
  spec.skew = -0.1;
  EXPECT_TRUE(spec.Validate().has_value());
}

TEST(StreamGeneratorTest, DeterministicForSameSpec) {
  const std::vector<Tuple> a = GenerateStream(SmallSpec());
  const std::vector<Tuple> b = GenerateStream(SmallSpec());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
}

TEST(StreamGeneratorTest, DifferentSeedsDiffer) {
  StreamSpec other = SmallSpec();
  other.seed = 8;
  const std::vector<Tuple> a = GenerateStream(SmallSpec());
  const std::vector<Tuple> b = GenerateStream(other);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) ++differing;
  }
  EXPECT_GT(differing, static_cast<int>(a.size()) / 2);
}

TEST(StreamGeneratorTest, KeysStayInDomain) {
  const StreamSpec spec = SmallSpec();
  for (const Tuple& t : GenerateStream(spec)) {
    ASSERT_LT(t.key, spec.num_distinct);
    ASSERT_EQ(t.value, 1u);
  }
}

TEST(StreamGeneratorTest, RankToKeyIsABijection) {
  const StreamSpec spec = SmallSpec();
  ZipfStreamGenerator gen(spec);
  std::unordered_set<item_t> keys;
  for (uint64_t rank = 1; rank <= spec.num_distinct; ++rank) {
    keys.insert(gen.RankToKey(rank));
  }
  EXPECT_EQ(keys.size(), spec.num_distinct);
}

TEST(StreamGeneratorTest, HotKeysAreNotSmallIntegers) {
  // The permutation must scatter the head of the distribution.
  const StreamSpec spec = SmallSpec();
  ZipfStreamGenerator gen(spec);
  uint32_t small = 0;
  for (uint64_t rank = 1; rank <= 10; ++rank) {
    if (gen.RankToKey(rank) < 10) ++small;
  }
  EXPECT_LT(small, 3u);
}

TEST(StreamGeneratorTest, TruthMatchesStream) {
  std::vector<wide_count_t> truth;
  const StreamSpec spec = SmallSpec();
  const std::vector<Tuple> stream = GenerateStreamWithTruth(spec, &truth);
  ASSERT_EQ(truth.size(), spec.num_distinct);
  std::vector<wide_count_t> recounted(spec.num_distinct, 0);
  for (const Tuple& t : stream) recounted[t.key] += t.value;
  EXPECT_EQ(truth, recounted);
}

TEST(StreamGeneratorTest, SkewShapesTheHead) {
  // The hottest key's share grows with skew.
  double previous_share = 0;
  for (const double skew : {0.0, 1.0, 2.0}) {
    StreamSpec spec = SmallSpec();
    spec.skew = skew;
    std::vector<wide_count_t> truth;
    GenerateStreamWithTruth(spec, &truth);
    const wide_count_t max_count =
        *std::max_element(truth.begin(), truth.end());
    const double share =
        static_cast<double>(max_count) / spec.stream_size;
    EXPECT_GT(share, previous_share) << "skew " << skew;
    previous_share = share;
  }
}

TEST(TraceSimulatorTest, IpTraceLikeShape) {
  const StreamSpec spec = IpTraceLikeSpec(/*scale=*/0.0001);
  EXPECT_NEAR(spec.skew, 0.9, 1e-9);
  EXPECT_GT(spec.stream_size, 10000u);
  EXPECT_GT(spec.num_distinct, 100u);
  // N/M ratio of the original trace (~35) is preserved.
  const double ratio = static_cast<double>(spec.stream_size) /
                       static_cast<double>(spec.num_distinct);
  EXPECT_NEAR(ratio, 461.0 / 13.0, 5.0);
}

TEST(TraceSimulatorTest, KosarakLikeShape) {
  const StreamSpec spec = KosarakLikeSpec(/*scale=*/0.1);
  EXPECT_NEAR(spec.skew, 1.0, 1e-9);
  EXPECT_EQ(spec.stream_size, 800000u);
  EXPECT_LE(spec.num_distinct, 40270u);
  EXPECT_GE(spec.num_distinct, 1024u);
}

TEST(TraceSimulatorTest, FullScaleMatchesPaperNumbers) {
  const StreamSpec ip = IpTraceLikeSpec(1.0);
  EXPECT_EQ(ip.stream_size, 461'000'000u);
  EXPECT_EQ(ip.num_distinct, 13'000'000u);
  const StreamSpec kosarak = KosarakLikeSpec(1.0);
  EXPECT_EQ(kosarak.stream_size, 8'000'000u);
  EXPECT_EQ(kosarak.num_distinct, 40'270u);
}

}  // namespace
}  // namespace asketch
