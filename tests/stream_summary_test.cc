#include "src/common/stream_summary.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace asketch {
namespace {

TEST(StreamSummaryTest, InsertAndFind) {
  StreamSummary summary(4);
  const uint32_t n = summary.Insert(10, 5, 99);
  EXPECT_EQ(summary.Find(10), n);
  EXPECT_EQ(summary.Key(n), 10u);
  EXPECT_EQ(summary.Count(n), 5u);
  EXPECT_EQ(summary.Aux(n), 99u);
  EXPECT_EQ(summary.Find(11), kSummaryNil);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, MinTracksSmallestCount) {
  StreamSummary summary(8);
  summary.Insert(1, 50, 0);
  summary.Insert(2, 10, 0);
  summary.Insert(3, 30, 0);
  EXPECT_EQ(summary.MinCount(), 10u);
  EXPECT_EQ(summary.Key(summary.MinNode()), 2u);
  summary.MoveToCount(summary.Find(2), 60);
  EXPECT_EQ(summary.MinCount(), 30u);
  EXPECT_EQ(summary.Key(summary.MinNode()), 3u);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, MoveDownward) {
  StreamSummary summary(4);
  summary.Insert(1, 100, 0);
  summary.Insert(2, 200, 0);
  summary.MoveToCount(summary.Find(2), 50);
  EXPECT_EQ(summary.MinCount(), 50u);
  EXPECT_EQ(summary.Key(summary.MinNode()), 2u);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, TiedCountsShareABucket) {
  StreamSummary summary(4);
  summary.Insert(1, 7, 0);
  summary.Insert(2, 7, 0);
  summary.Insert(3, 7, 0);
  EXPECT_EQ(summary.MinCount(), 7u);
  int visited = 0;
  summary.ForEach([&](item_t, count_t count, count_t) {
    EXPECT_EQ(count, 7u);
    ++visited;
  });
  EXPECT_EQ(visited, 3);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, RemoveMakesRoom) {
  StreamSummary summary(2);
  summary.Insert(1, 5, 0);
  summary.Insert(2, 6, 0);
  EXPECT_TRUE(summary.Full());
  summary.Remove(summary.Find(1));
  EXPECT_FALSE(summary.Full());
  EXPECT_EQ(summary.Find(1), kSummaryNil);
  EXPECT_EQ(summary.size(), 1u);
  summary.Insert(3, 1, 0);
  EXPECT_EQ(summary.MinCount(), 1u);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, ResetClearsEverything) {
  StreamSummary summary(4);
  summary.Insert(1, 5, 0);
  summary.Insert(2, 6, 0);
  summary.Reset();
  EXPECT_EQ(summary.size(), 0u);
  EXPECT_EQ(summary.Find(1), kSummaryNil);
  EXPECT_EQ(summary.MinNode(), kSummaryNil);
  EXPECT_EQ(summary.MinCount(), 0u);
  summary.Insert(3, 1, 2);
  EXPECT_EQ(summary.size(), 1u);
  EXPECT_TRUE(summary.CheckInvariants());
}

TEST(StreamSummaryTest, CapacityOne) {
  StreamSummary summary(1);
  summary.Insert(42, 3, 0);
  EXPECT_TRUE(summary.Full());
  EXPECT_EQ(summary.MinCount(), 3u);
  summary.MoveToCount(summary.Find(42), 10);
  EXPECT_EQ(summary.MinCount(), 10u);
  summary.Remove(summary.Find(42));
  EXPECT_EQ(summary.size(), 0u);
  EXPECT_TRUE(summary.CheckInvariants());
}

// Reference-model fuzz: random inserts / moves / removes mirrored in a
// std::map, with full invariant checks along the way. This exercises the
// bucket splicing and the backward-shift hash deletion under heavy churn.
class StreamSummaryFuzzTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StreamSummaryFuzzTest, MatchesReferenceModel) {
  const uint32_t capacity = GetParam();
  StreamSummary summary(capacity);
  std::map<item_t, std::pair<count_t, count_t>> model;  // key -> count,aux
  Rng rng(capacity * 31 + 7);
  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.NextBounded(100));
    const item_t key = static_cast<item_t>(rng.NextBounded(capacity * 3));
    if (op < 50) {  // upsert / move
      const auto it = model.find(key);
      if (it != model.end()) {
        const count_t new_count =
            static_cast<count_t>(rng.NextBounded(1000));
        summary.MoveToCount(summary.Find(key), new_count);
        it->second.first = new_count;
      } else if (model.size() < capacity) {
        const count_t count = static_cast<count_t>(rng.NextBounded(1000));
        const count_t aux = static_cast<count_t>(rng.NextBounded(50));
        summary.Insert(key, count, aux);
        model[key] = {count, aux};
      }
    } else if (op < 75) {  // remove (if present)
      const auto it = model.find(key);
      if (it != model.end()) {
        summary.Remove(summary.Find(key));
        model.erase(it);
      }
    } else if (op < 90) {  // evict min
      if (!model.empty()) {
        const uint32_t min_node = summary.MinNode();
        ASSERT_NE(min_node, kSummaryNil);
        const count_t min_count = summary.Count(min_node);
        // The structure's min must equal the model's min count.
        count_t model_min = ~count_t{0};
        for (const auto& [k, v] : model) {
          model_min = std::min(model_min, v.first);
        }
        EXPECT_EQ(min_count, model_min);
        model.erase(summary.Key(min_node));
        summary.Remove(min_node);
      }
    } else {  // point lookups
      const auto it = model.find(key);
      const uint32_t node = summary.Find(key);
      if (it == model.end()) {
        EXPECT_EQ(node, kSummaryNil);
      } else {
        ASSERT_NE(node, kSummaryNil);
        EXPECT_EQ(summary.Count(node), it->second.first);
        EXPECT_EQ(summary.Aux(node), it->second.second);
      }
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(summary.CheckInvariants()) << "step " << step;
      ASSERT_EQ(summary.size(), model.size());
    }
  }
  EXPECT_TRUE(summary.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Capacities, StreamSummaryFuzzTest,
                         ::testing::Values(1, 2, 3, 8, 32, 128));

}  // namespace
}  // namespace asketch
