#include "src/sketch/topk_sketch.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/workload/exact_counter.h"
#include "src/workload/metrics.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

TEST(TopKCountMinTest, TracksExactCountsOnTinyStreams) {
  TopKCountMin topk(4, CountMinConfig::FromSpaceBudget(16 * 1024, 4, 9));
  topk.Update(1, 10);
  topk.Update(2, 20);
  topk.Update(3, 5);
  const auto report = topk.TopK();
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report[0].key, 2u);
  EXPECT_EQ(report[0].estimate, 20u);
  EXPECT_EQ(report[1].key, 1u);
  EXPECT_EQ(report[2].key, 3u);
}

TEST(TopKCountMinTest, EvictsWeakestCandidate) {
  TopKCountMin topk(2, CountMinConfig::FromSpaceBudget(16 * 1024, 4, 9));
  topk.Update(1, 10);
  topk.Update(2, 20);
  topk.Update(3, 30);  // evicts 1
  const auto report = topk.TopK();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].key, 3u);
  EXPECT_EQ(report[1].key, 2u);
}

TEST(TopKCountMinTest, WeakArrivalDoesNotEvict) {
  TopKCountMin topk(2, CountMinConfig::FromSpaceBudget(16 * 1024, 4, 9));
  topk.Update(1, 10);
  topk.Update(2, 20);
  topk.Update(3, 1);
  const auto report = topk.TopK();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].key, 2u);
  EXPECT_EQ(report[1].key, 1u);
}

TEST(TopKCountMinTest, HighPrecisionOnSkewedStreams) {
  const uint32_t k = 32;
  TopKCountMin topk =
      TopKCountMin::FromSpaceBudget(128 * 1024, 8, k, 42);
  StreamSpec spec;
  spec.stream_size = 400000;
  spec.num_distinct = 100000;
  spec.skew = 1.5;
  spec.seed = 7;
  ExactCounter truth(spec.num_distinct);
  for (const Tuple& t : GenerateStream(spec)) {
    topk.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  std::vector<item_t> reported;
  for (const TopKEntry& e : topk.TopK()) reported.push_back(e.key);
  EXPECT_GE(PrecisionAtK(reported, truth, k), 0.85);
}

TEST(TopKCountMinTest, ReportedEstimatesAreOneSided) {
  TopKCountMin topk(16, CountMinConfig::FromSpaceBudget(8 * 1024, 4, 3));
  StreamSpec spec;
  spec.stream_size = 50000;
  spec.num_distinct = 2000;
  spec.skew = 1.2;
  spec.seed = 9;
  ExactCounter truth(spec.num_distinct);
  for (const Tuple& t : GenerateStream(spec)) {
    topk.Update(t.key, t.value);
    truth.Update(t.key, t.value);
  }
  for (const TopKEntry& e : topk.TopK()) {
    EXPECT_GE(e.estimate, truth.Count(e.key)) << "key " << e.key;
  }
}

TEST(TopKCountMinTest, SpaceBudgetIsRespected) {
  TopKCountMin topk = TopKCountMin::FromSpaceBudget(64 * 1024, 8, 32, 1);
  EXPECT_LE(topk.MemoryUsageBytes(), 64u * 1024u);
  EXPECT_GT(topk.MemoryUsageBytes(), 62u * 1024u);
}

TEST(TopKCountMinTest, ResetClearsCandidatesAndSketch) {
  TopKCountMin topk(4, CountMinConfig::FromSpaceBudget(8 * 1024, 4, 9));
  topk.Update(1, 10);
  topk.Reset();
  EXPECT_TRUE(topk.TopK().empty());
  EXPECT_EQ(topk.Estimate(1), 0u);
}

}  // namespace
}  // namespace asketch
