#include "src/core/windowed_asketch.h"

#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/workload/stream_generator.h"

namespace asketch {
namespace {

ASketchConfig SmallConfig() {
  ASketchConfig config;
  config.total_bytes = 16 * 1024;
  config.width = 4;
  config.filter_items = 16;
  config.seed = 5;
  return config;
}

TEST(WindowedASketchTest, CountsWithinOneWindowAreComplete) {
  WindowedASketch window(1000, SmallConfig());
  for (int i = 0; i < 100; ++i) window.Update(7);
  EXPECT_GE(window.Estimate(7), 100u);
  EXPECT_EQ(window.rotations(), 0u);
}

TEST(WindowedASketchTest, RotationHappensAtWindowBoundary) {
  WindowedASketch window(100, SmallConfig());
  for (int i = 0; i < 99; ++i) window.Update(1);
  EXPECT_EQ(window.rotations(), 0u);
  EXPECT_EQ(window.current_epoch_fill(), 99u);
  window.Update(1);
  EXPECT_EQ(window.rotations(), 1u);
  EXPECT_EQ(window.current_epoch_fill(), 0u);
  // The counts moved to the previous epoch but remain visible.
  EXPECT_GE(window.Estimate(1), 100u);
}

TEST(WindowedASketchTest, OldEpochsExpire) {
  WindowedASketch window(100, SmallConfig());
  for (int i = 0; i < 100; ++i) window.Update(1);  // epoch A (rotates)
  for (int i = 0; i < 50; ++i) window.Update(2);   // epoch B filling
  // Key 1's epoch is "previous": still fully visible.
  EXPECT_GE(window.Estimate(1), 100u);
  for (int i = 0; i < 50; ++i) window.Update(2);   // epoch B rotates
  // Key 1 is now two windows old: expired (hash noise from the fresh
  // sketch may leave a residue, never the full count).
  EXPECT_LT(window.Estimate(1), 50u);
  EXPECT_GE(window.Estimate(2), 100u);
  for (int i = 0; i < 50; ++i) window.Update(3);   // epoch C filling
  EXPECT_GE(window.Estimate(2), 100u);  // previous epoch still covered
  EXPECT_GE(window.Estimate(3), 50u);
}

TEST(WindowedASketchTest, NeverUndercountsWithinTheCoveredSpan) {
  // Reference model: exact counts of the last (current + previous) epoch.
  const uint64_t kWindow = 500;
  WindowedASketch window(kWindow, SmallConfig());
  std::deque<item_t> recent;  // the keys of the covered span, in order
  uint64_t current_fill = 0;
  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const item_t key = static_cast<item_t>(rng.NextBounded(100));
    window.Update(key);
    recent.push_back(key);
    ++current_fill;
    if (current_fill == kWindow) {
      current_fill = 0;
      while (recent.size() > 2 * kWindow) recent.pop_front();
    }
    if (recent.size() > 2 * kWindow) recent.pop_front();
    if (i % 997 == 0) {
      // Exact count over the span the window must cover (previous full
      // epoch + current partial epoch).
      const size_t covered = kWindow + current_fill;
      uint64_t exact = 0;
      for (size_t j = recent.size() > covered ? recent.size() - covered
                                              : 0;
           j < recent.size(); ++j) {
        if (recent[j] == key) ++exact;
      }
      ASSERT_GE(window.Estimate(key), exact) << "step " << i;
    }
  }
}

TEST(WindowedASketchTest, TopKConsistentWithEstimates) {
  WindowedASketch window(1000, SmallConfig());
  StreamSpec spec;
  spec.stream_size = 5000;
  spec.num_distinct = 200;
  spec.skew = 1.4;
  spec.seed = 3;
  for (const Tuple& t : GenerateStream(spec)) window.Update(t.key);
  const auto top = window.TopK();
  ASSERT_FALSE(top.empty());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].new_count, window.Estimate(top[i].key));
    if (i > 0) {
      EXPECT_GE(top[i - 1].new_count, top[i].new_count);
    }
  }
}

TEST(WindowedASketchTest, WeightedUpdatesCountTowardRotation) {
  WindowedASketch window(100, SmallConfig());
  window.Update(1, 60);
  EXPECT_EQ(window.rotations(), 0u);
  window.Update(2, 60);  // 40 close out the epoch, 20 start the next
  EXPECT_EQ(window.rotations(), 1u);
  EXPECT_EQ(window.current_epoch_fill(), 20u);
}

TEST(WindowedASketchTest, WeightSpanningMultipleWindowsRotatesEachBoundary) {
  WindowedASketch window(100, SmallConfig());
  window.Update(1, 350);  // crosses epoch boundaries at 100, 200, 300
  EXPECT_EQ(window.rotations(), 3u);
  EXPECT_EQ(window.current_epoch_fill(), 50u);
  // Covered span = previous full epoch (100) + current partial (50); the
  // first 200 arrivals expired with their epochs. Key 1 is
  // filter-resident in both live epochs, so the estimate is exact.
  EXPECT_EQ(window.Estimate(1), 150u);
}

TEST(WindowedASketchTest, OverflowWeightLandsInTheNewEpoch) {
  WindowedASketch window(100, SmallConfig());
  window.Update(1, 90);
  window.Update(2, 30);  // 10 close out the epoch, 20 land in the new one
  EXPECT_EQ(window.rotations(), 1u);
  EXPECT_EQ(window.current_epoch_fill(), 20u);
  window.Update(3, 80);  // fills the epoch exactly: rotate again
  EXPECT_EQ(window.rotations(), 2u);
  EXPECT_EQ(window.current_epoch_fill(), 0u);
  // The epoch holding {1:90, 2:10} expired; the previous epoch holds
  // {2:20, 3:80} and the current epoch is empty. Both keys sit in the
  // previous epoch's filter, so their windowed estimates are exact.
  EXPECT_EQ(window.Estimate(2), 20u);
  EXPECT_EQ(window.Estimate(3), 80u);
  EXPECT_EQ(window.Estimate(1), 0u);
}

TEST(WindowedASketchTest, ResetClearsAllEpochs) {
  WindowedASketch window(100, SmallConfig());
  for (int i = 0; i < 250; ++i) window.Update(1);
  window.Reset();
  EXPECT_EQ(window.Estimate(1), 0u);
  EXPECT_EQ(window.rotations(), 0u);
  EXPECT_EQ(window.current_epoch_fill(), 0u);
}

TEST(WindowedASketchTest, MemoryIsTwoEpochs) {
  WindowedASketch window(100, SmallConfig());
  EXPECT_LE(window.MemoryUsageBytes(), 2u * 16u * 1024u);
  EXPECT_GT(window.MemoryUsageBytes(), 16u * 1024u);
}

TEST(WindowedASketchTest, RejectsNonPositiveWeights) {
  WindowedASketch window(100, SmallConfig());
  EXPECT_DEATH(window.Update(1, 0), "weight");
}

}  // namespace
}  // namespace asketch
