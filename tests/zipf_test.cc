#include "src/workload/zipf.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace asketch {
namespace {

TEST(ZipfTest, SamplesStayInDomain) {
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 3.0}) {
    ZipfDistribution zipf(100, skew);
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
      const uint64_t r = zipf.Sample(rng);
      ASSERT_GE(r, 1u);
      ASSERT_LE(r, 100u);
    }
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(2);
  std::vector<int> histogram(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[zipf.Sample(rng) - 1];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, kSamples / 10, kSamples / 100);
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(1000, 1.5);
  double sum = 0;
  for (uint64_t r = 1; r <= 1000; ++r) sum += zipf.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilityIsMonotoneDecreasing) {
  ZipfDistribution zipf(100, 0.8);
  for (uint64_t r = 2; r <= 100; ++r) {
    EXPECT_LT(zipf.Probability(r), zipf.Probability(r - 1));
  }
}

class ZipfEmpiricalTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfEmpiricalTest, EmpiricalFrequenciesMatchTheory) {
  const double skew = GetParam();
  constexpr uint64_t kDomain = 50;
  constexpr int kSamples = 200000;
  ZipfDistribution zipf(kDomain, skew);
  Rng rng(static_cast<uint64_t>(skew * 1000) + 3);
  std::vector<int> histogram(kDomain, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++histogram[zipf.Sample(rng) - 1];
  }
  for (uint64_t r = 1; r <= kDomain; ++r) {
    const double expected = zipf.Probability(r) * kSamples;
    if (expected < 50) continue;  // too few samples for a tight check
    EXPECT_NEAR(histogram[r - 1], expected,
                5 * std::sqrt(expected) + 0.01 * expected)
        << "rank " << r << " skew " << skew;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfEmpiricalTest,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.2, 1.5,
                                           2.0, 2.5, 3.0));

TEST(ZipfTest, TopKMassMatchesPaperFigure3Anchor) {
  // §4: "For a skew of 1.5, the top-32 data items account for 80% of all
  // frequency counts" on an 8M-item domain. Verify the analytic mass.
  ZipfDistribution zipf(1u << 20, 1.5);  // 1M domain: same head behaviour
  const double mass = zipf.TopKMass(32);
  EXPECT_GT(mass, 0.75);
  EXPECT_LT(mass, 0.90);
}

TEST(ZipfTest, TopKMassIsMonotoneInK) {
  ZipfDistribution zipf(10000, 1.2);
  double previous = 0;
  for (const uint64_t k : {1ull, 8ull, 32ull, 128ull, 1024ull, 10000ull}) {
    const double mass = zipf.TopKMass(k);
    EXPECT_GT(mass, previous);
    previous = mass;
  }
  EXPECT_DOUBLE_EQ(zipf.TopKMass(10000), 1.0);
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  double previous = 0;
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(100000, skew);
    const double mass = zipf.TopKMass(32);
    EXPECT_GT(mass, previous) << "skew " << skew;
    previous = mass;
  }
}

TEST(ZipfTest, DomainOfOneAlwaysSamplesOne) {
  ZipfDistribution zipf(1, 1.5);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf.Sample(rng), 1u);
  }
}

TEST(ZipfTest, SkewNearOneIsNumericallyStable) {
  // The H integral has a removable singularity at skew 1.
  for (const double skew : {0.999, 1.0, 1.001}) {
    ZipfDistribution zipf(1000, skew);
    Rng rng(5);
    double mean = 0;
    for (int i = 0; i < 10000; ++i) {
      mean += static_cast<double>(zipf.Sample(rng));
    }
    mean /= 10000;
    EXPECT_GT(mean, 1.0);
    EXPECT_LT(mean, 1000.0);
  }
}

}  // namespace
}  // namespace asketch
