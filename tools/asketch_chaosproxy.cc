// asketch_chaosproxy — fault-injecting TCP proxy for chaos smokes
// (docs/OPERATIONS.md "Failure modes").
//
//   asketch_chaosproxy --upstream-port U [--listen-port P] [--host H]
//                      [--seed S] [--delay-every N] [--delay-ms M]
//                      [--reset-after-bytes B] [--truncate-after-bytes B]
//                      [--fault-connections K] [--pause-file PATH]
//
// Sits between a client and asketchd on loopback and injects faults
// into the byte stream according to a schedule that is fully
// determined by the flags and --seed — rerunning with the same seed
// replays the same schedule:
//
//   --delay-every N / --delay-ms M   before every Nth forwarded chunk,
//       sleep a seeded pseudorandom 1..M ms (jitter/stall injection).
//   --reset-after-bytes B   once a connection has relayed B bytes
//       (both directions combined), abort it with a TCP RST
//       (SO_LINGER 0) — the mid-stream "peer vanished" fault.
//   --truncate-after-bytes B   like reset, but a clean FIN after B
//       bytes: frames get cut at an arbitrary byte boundary.
//   --fault-connections K   only the first K connections (accept
//       order) suffer reset/truncate; later ones run clean, so a
//       reconnecting client eventually makes progress (default: all).
//   --pause-file PATH   while PATH exists, forward nothing in either
//       direction — the switch chaos smokes flip to freeze the
//       client's ack horizon before checkpointing and killing the
//       server.
//
// Announces "chaosproxy listening on 127.0.0.1:PORT" on stdout
// (flushed) so scripts can scrape the port; runs until killed. Each
// connection is relayed by one thread polling both sockets. When the
// upstream dial fails the downstream socket is reset immediately —
// exactly what a dead server behind the proxy should look like.
//
// Exit codes: 2 usage error, 1 runtime failure.

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <chrono>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#error "asketch_chaosproxy requires a POSIX socket API"
#endif

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: asketch_chaosproxy --upstream-port U [--listen-port P]\n"
      "                          [--host H] [--seed S]\n"
      "                          [--delay-every N] [--delay-ms M]\n"
      "                          [--reset-after-bytes B]\n"
      "                          [--truncate-after-bytes B]\n"
      "                          [--fault-connections K]\n"
      "                          [--pause-file PATH]\n");
  return 2;
}

/// Strict decimal parse; false on empty/trailing-garbage/overflow input.
bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

struct ProxyConfig {
  std::string host = "127.0.0.1";
  uint16_t listen_port = 0;
  uint16_t upstream_port = 0;
  uint64_t seed = 1;
  uint64_t delay_every = 0;      ///< 0 = no delays
  uint64_t delay_ms = 5;
  uint64_t reset_after = 0;      ///< bytes; 0 = never
  uint64_t truncate_after = 0;   ///< bytes; 0 = never
  uint64_t fault_connections = ~uint64_t{0};
  std::string pause_file;
};

/// splitmix64 — the deterministic per-connection jitter source.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool PauseActive(const ProxyConfig& config) {
  return !config.pause_file.empty() &&
         ::access(config.pause_file.c_str(), F_OK) == 0;
}

/// Abort `fd` with an RST instead of a FIN.
void ResetSocket(int fd) {
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(fd);
}

int DialUpstream(const ProxyConfig& config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.upstream_port);
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool ForwardAll(int fd, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Relays one downstream<->upstream pair until either side closes or a
/// scheduled fault fires. `index` is the accept-order connection index.
void RelayConnection(const ProxyConfig& config, int down, int up,
                     uint64_t index) {
  const bool faultable = index < config.fault_connections;
  uint64_t rng = config.seed * 0x2545f4914f6cdd1dull + index + 1;
  uint64_t relayed = 0;
  uint64_t chunks = 0;
  std::vector<uint8_t> buffer(64 * 1024);
  for (;;) {
    if (PauseActive(config)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }
    pollfd pfds[2] = {};
    pfds[0].fd = down;
    pfds[0].events = POLLIN;
    pfds[1].fd = up;
    pfds[1].events = POLLIN;
    const int ready = ::poll(pfds, 2, 100);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) break;
    if (ready <= 0) continue;
    bool closed = false;
    for (int side = 0; side < 2 && !closed; ++side) {
      if ((pfds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int from = side == 0 ? down : up;
      const int to = side == 0 ? up : down;
      const ssize_t n = ::recv(from, buffer.data(), buffer.size(), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        closed = true;
        break;
      }
      ++chunks;
      if (config.delay_every > 0 && chunks % config.delay_every == 0) {
        const uint64_t ms =
            config.delay_ms > 0 ? 1 + NextRand(&rng) % config.delay_ms : 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      size_t to_forward = static_cast<size_t>(n);
      bool truncate = false;
      if (faultable && config.truncate_after > 0 &&
          relayed + to_forward >= config.truncate_after) {
        to_forward = static_cast<size_t>(config.truncate_after - relayed);
        truncate = true;
      }
      if (faultable && config.reset_after > 0 &&
          relayed + to_forward >= config.reset_after) {
        // RST both sides mid-frame: the harshest mid-stream fault.
        ResetSocket(down);
        ResetSocket(up);
        return;
      }
      if (!ForwardAll(to, buffer.data(), to_forward)) {
        closed = true;
        break;
      }
      relayed += to_forward;
      if (truncate) {
        closed = true;
        break;
      }
    }
    if (closed) break;
  }
  ::close(down);
  ::close(up);
}

}  // namespace

int main(int argc, char** argv) {
  ProxyConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t n = 0;
    if (arg == "--listen-port") {
      if (!ParseU64(value(), &n) || n > 65535) return Usage();
      config.listen_port = static_cast<uint16_t>(n);
    } else if (arg == "--upstream-port") {
      if (!ParseU64(value(), &n) || n == 0 || n > 65535) return Usage();
      config.upstream_port = static_cast<uint16_t>(n);
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.host = v;
    } else if (arg == "--seed") {
      if (!ParseU64(value(), &config.seed)) return Usage();
    } else if (arg == "--delay-every") {
      if (!ParseU64(value(), &config.delay_every)) return Usage();
    } else if (arg == "--delay-ms") {
      if (!ParseU64(value(), &config.delay_ms)) return Usage();
    } else if (arg == "--reset-after-bytes") {
      if (!ParseU64(value(), &config.reset_after)) return Usage();
    } else if (arg == "--truncate-after-bytes") {
      if (!ParseU64(value(), &config.truncate_after)) return Usage();
    } else if (arg == "--fault-connections") {
      if (!ParseU64(value(), &config.fault_connections)) return Usage();
    } else if (arg == "--pause-file") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.pause_file = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (config.upstream_port == 0) return Usage();

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::fprintf(stderr, "chaosproxy: socket() failed\n");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config.listen_port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 64) != 0) {
    std::fprintf(stderr, "chaosproxy: bind/listen failed on port %u\n",
                 config.listen_port);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::printf("chaosproxy listening on 127.0.0.1:%u -> %s:%u\n",
              ntohs(addr.sin_port), config.host.c_str(),
              config.upstream_port);
  std::fflush(stdout);

  uint64_t index = 0;
  for (;;) {
    const int down = ::accept(listen_fd, nullptr, nullptr);
    if (down < 0) {
      if (errno == EINTR) continue;
      break;
    }
    ::setsockopt(down, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const int up = DialUpstream(config);
    if (up < 0) {
      // Dead upstream: make it look like a dead server, not a proxy.
      ResetSocket(down);
      continue;
    }
    std::thread(RelayConnection, config, down, up, index++).detach();
  }
  ::close(listen_fd);
  return 0;
}
