// asketch_cli: build, persist, and query ASketch synopses from the
// command line.
//
//   asketch_cli build <stream.ask> <synopsis.as> [--bytes N] [--width W]
//                     [--filter F]
//       Consume a binary stream file (see make_stream) into an ASketch
//       and serialize the synopsis.
//
//   asketch_cli query <synopsis.as> <key> [key...]
//       Print frequency estimates for the given keys.
//
//   asketch_cli topk <synopsis.as>
//       Print the filter's heavy-hitter report.
//
//   asketch_cli stats <synopsis.as>
//       Print size, selectivity, and exchange statistics.
//
//   asketch_cli merge <a.as> <b.as> <out.as>
//       Merge two synopses built with identical parameters.
//
// The synopsis on disk is the library's binary serialization of
// ASketch<RelaxedHeapFilter, CountMin>.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/core/asketch.h"
#include "src/workload/dataset_io.h"

namespace {

using namespace asketch;
using CliSketch = ASketch<RelaxedHeapFilter, CountMin>;

void Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  asketch_cli build <stream.ask> <synopsis.as> "
               "[--bytes N] [--width W] [--filter F] [--seed S]\n"
               "  asketch_cli query <synopsis.as> <key> [key...]\n"
               "  asketch_cli topk  <synopsis.as>\n"
               "  asketch_cli stats <synopsis.as>\n"
               "  asketch_cli merge <a.as> <b.as> <out.as>\n");
}

std::optional<CliSketch> LoadSynopsis(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  BinaryReader reader(f);
  auto sketch = CliSketch::DeserializeFrom(reader);
  std::fclose(f);
  if (!sketch.has_value()) {
    std::fprintf(stderr, "%s is not a valid ASketch synopsis\n",
                 path.c_str());
  }
  return sketch;
}

bool SaveSynopsis(const CliSketch& sketch, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  BinaryWriter writer(f);
  const bool ok = sketch.SerializeTo(writer);
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "write failed: %s\n", path.c_str());
  return ok;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string out_path = argv[3];
  ASketchConfig config;
  config.total_bytes = 128 * 1024;
  config.width = 8;
  config.filter_items = 32;
  for (int i = 4; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--bytes") {
      config.total_bytes = std::strtoull(value, nullptr, 10);
    } else if (flag == "--width") {
      config.width = static_cast<uint32_t>(std::atoi(value));
    } else if (flag == "--filter") {
      config.filter_items = static_cast<uint32_t>(std::atoi(value));
    } else if (flag == "--seed") {
      config.seed = std::strtoull(value, nullptr, 10);
    } else {
      Usage();
      return 2;
    }
  }
  if (const auto error = config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  // Stream the file in fixed-size blocks through the batched ingestion
  // path: bounded memory regardless of trace size, and each block gets
  // the chunked SIMD filter probes + sketch prefetching of UpdateBatch.
  constexpr size_t kBlockTuples = 1 << 16;
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  CliSketch sketch = MakeASketchCountMin<RelaxedHeapFilter>(config);
  std::vector<Tuple> block;
  uint64_t ingested = 0;
  while (true) {
    if (const auto error = reader.ReadBlock(kBlockTuples, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    sketch.UpdateBatch(block);
    ingested += block.size();
  }
  if (!SaveSynopsis(sketch, out_path)) return 1;
  std::fprintf(stderr,
               "built %zu-byte synopsis from %llu tuples "
               "(selectivity %.3f, %llu exchanges)\n",
               sketch.MemoryUsageBytes(),
               static_cast<unsigned long long>(ingested),
               sketch.stats().FilterSelectivity(),
               static_cast<unsigned long long>(sketch.stats().exchanges));
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  for (int i = 3; i < argc; ++i) {
    const item_t key =
        static_cast<item_t>(std::strtoul(argv[i], nullptr, 10));
    std::printf("%u\t%u\n", key, sketch->Estimate(key));
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  std::printf("%-12s %-12s %-12s\n", "key", "estimate", "exact_hits");
  for (const FilterEntry& e : sketch->TopK()) {
    std::printf("%-12u %-12u %-12u\n", e.key, e.new_count,
                e.new_count - e.old_count);
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  const ASketchStats& stats = sketch->stats();
  std::printf("synopsis            %s\n", sketch->Name().c_str());
  std::printf("memory bytes        %zu\n", sketch->MemoryUsageBytes());
  std::printf("sketch rows (w)     %u\n", sketch->sketch().width());
  std::printf("sketch depth (h')   %u\n", sketch->sketch().depth());
  std::printf("filter capacity     %u\n", sketch->filter().capacity());
  std::printf("filter occupancy    %u\n", sketch->filter().size());
  std::printf("filtered weight     %llu\n",
              static_cast<unsigned long long>(stats.filtered_weight));
  std::printf("sketch weight       %llu\n",
              static_cast<unsigned long long>(stats.sketch_weight));
  std::printf("filter selectivity  %.4f\n", stats.FilterSelectivity());
  std::printf("exchanges           %llu\n",
              static_cast<unsigned long long>(stats.exchanges));
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc != 5) {
    Usage();
    return 2;
  }
  auto a = LoadSynopsis(argv[2]);
  auto b = LoadSynopsis(argv[3]);
  if (!a.has_value() || !b.has_value()) return 1;
  if (const auto error = a->MergeFrom(*b)) {
    std::fprintf(stderr, "merge failed: %s\n", error->c_str());
    return 1;
  }
  if (!SaveSynopsis(*a, argv[4])) return 1;
  std::fprintf(stderr, "merged synopsis written to %s\n", argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "build") return CmdBuild(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "topk") return CmdTopK(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "merge") return CmdMerge(argc, argv);
  Usage();
  return 2;
}
