// asketch_cli: build, persist, checkpoint, and query ASketch synopses
// from the command line.
//
//   asketch_cli build <stream.ask> <synopsis.as> [--bytes N] [--width W]
//                     [--filter F] [--seed S]
//       Consume a binary stream file (see make_stream) into an ASketch
//       and serialize the synopsis.
//
//   asketch_cli checkpoint <stream.ask> <prefix> [build flags]
//                          [--every N] [--retain K] [--recover]
//       Like build, but persist a crash-consistent snapshot (see
//       src/common/snapshot.h) under <prefix>.<gen>.snap every N tuples
//       and at the end, keeping the last K generations. With --recover,
//       resume from the newest intact checkpoint instead of starting
//       over: the run re-reads the stream, skips the tuples already
//       ingested, and continues. After every save the process re-adopts
//       its own checkpoint, so the in-memory trajectory is a
//       deterministic function of (stream, interval) and a recovered run
//       produces a bit-identical final synopsis to an uninterrupted one.
//
//   asketch_cli restore <prefix> <synopsis.as>
//       Extract the newest intact checkpoint into a plain synopsis file
//       usable by query/topk/stats.
//
//   asketch_cli recover <prefix>
//       Report which checkpoint generation would be recovered (and how
//       many newer, corrupt generations would be skipped).
//
//   asketch_cli query <synopsis.as> <key> [key...]
//       Print frequency estimates for the given keys.
//
//   asketch_cli topk <synopsis.as>
//       Print the filter's heavy-hitter report.
//
//   asketch_cli stats <synopsis.as>
//       Print size, selectivity, and exchange statistics.
//
//   asketch_cli merge <a.as> <b.as> <out.as>
//       Merge two synopses built with identical parameters.
//
// The synopsis on disk is the library's binary serialization of
// ASketch<RelaxedHeapFilter, CountMin>; synopsis files are published
// atomically (temp file + fsync + rename). Every failure path exits
// nonzero: 2 for usage errors, 1 for runtime failures.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/snapshot.h"
#include "src/core/asketch.h"
#include "src/workload/dataset_io.h"

namespace {

using namespace asketch;
using CliSketch = ASketch<RelaxedHeapFilter, CountMin>;

/// Snapshot payload tag for CLI checkpoints: u64 ingested-tuple count
/// followed by the CliSketch blob. Application tags live outside the
/// library's 0x41 composed-tag namespace.
constexpr uint32_t kCliCheckpointTag = 0x31504b43u;  // "CKP1"

constexpr size_t kBlockTuples = 1 << 16;

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asketch_cli build <stream.ask> <synopsis.as> "
      "[--bytes N] [--width W] [--filter F] [--seed S]\n"
      "  asketch_cli checkpoint <stream.ask> <prefix> [build flags] "
      "[--every N] [--retain K] [--recover]\n"
      "  asketch_cli restore <prefix> <synopsis.as>\n"
      "  asketch_cli recover <prefix>\n"
      "  asketch_cli query <synopsis.as> <key> [key...]\n"
      "  asketch_cli topk  <synopsis.as>\n"
      "  asketch_cli stats <synopsis.as>\n"
      "  asketch_cli merge <a.as> <b.as> <out.as>\n");
}

/// Strict decimal parse; false on empty/trailing-garbage/overflow input.
bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::optional<CliSketch> LoadSynopsis(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  BinaryReader reader(f);
  auto sketch = CliSketch::DeserializeFrom(reader);
  std::fclose(f);
  if (!sketch.has_value()) {
    std::fprintf(stderr, "%s is not a valid ASketch synopsis\n",
                 path.c_str());
  }
  return sketch;
}

bool SaveSynopsis(const CliSketch& sketch, const std::string& path) {
  BinaryWriter writer;
  if (!sketch.SerializeTo(writer)) {
    std::fprintf(stderr, "serialization failed for %s\n", path.c_str());
    return false;
  }
  // Atomic publication: a crash mid-write can never leave a torn
  // synopsis under the final name.
  if (const auto error = WriteFileAtomic(path, writer.buffer())) {
    std::fprintf(stderr, "write failed: %s\n", error->c_str());
    return false;
  }
  return true;
}

std::vector<uint8_t> EncodeCheckpoint(const CliSketch& sketch,
                                      uint64_t ingested) {
  BinaryWriter writer;
  writer.Reserve(sizeof(uint64_t) + sketch.MemoryUsageBytes());
  writer.PutU64(ingested);
  sketch.SerializeTo(writer);
  return writer.buffer();
}

std::optional<CliSketch> DecodeCheckpoint(
    const std::vector<uint8_t>& payload, uint64_t* ingested) {
  BinaryReader reader(payload.data(), payload.size());
  if (!reader.GetU64(ingested)) return std::nullopt;
  return CliSketch::DeserializeFrom(reader);
}

/// Persists a checkpoint and re-adopts the just-written state, so every
/// run — clean or recovered — continues from the same (deserialization-
/// normalized) filter layout. See the checkpoint section of the file
/// comment.
bool SaveAndReload(SnapshotStore& store, uint64_t ingested,
                   std::optional<CliSketch>* sketch) {
  const std::vector<uint8_t> payload = EncodeCheckpoint(**sketch, ingested);
  if (const auto error = store.Save(kCliCheckpointTag, payload)) {
    std::fprintf(stderr, "checkpoint failed: %s\n", error->c_str());
    return false;
  }
  uint64_t check = 0;
  auto reloaded = DecodeCheckpoint(payload, &check);
  if (!reloaded.has_value() || check != ingested) {
    std::fprintf(stderr, "checkpoint round-trip failed at %llu tuples\n",
                 static_cast<unsigned long long>(ingested));
    return false;
  }
  *sketch = std::move(reloaded);
  return true;
}

/// Parsed flag set shared by build and checkpoint.
struct BuildFlags {
  ASketchConfig config;
  uint64_t every = 1 << 20;
  uint64_t retain = 3;
  bool recover = false;
};

bool ParseBuildFlags(int argc, char** argv, int first,
                     bool allow_checkpoint_flags, BuildFlags* flags) {
  flags->config.total_bytes = 128 * 1024;
  flags->config.width = 8;
  flags->config.filter_items = 32;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    if (allow_checkpoint_flags && flag == "--recover") {
      flags->recover = true;
      continue;
    }
    if (i + 1 >= argc) return false;
    const char* value = argv[++i];
    uint64_t parsed = 0;
    if (!ParseU64(value, &parsed)) return false;
    if (flag == "--bytes") {
      flags->config.total_bytes = parsed;
    } else if (flag == "--width") {
      flags->config.width = static_cast<uint32_t>(parsed);
    } else if (flag == "--filter") {
      flags->config.filter_items = static_cast<uint32_t>(parsed);
    } else if (flag == "--seed") {
      flags->config.seed = parsed;
    } else if (allow_checkpoint_flags && flag == "--every") {
      if (parsed == 0) return false;
      flags->every = parsed;
    } else if (allow_checkpoint_flags && flag == "--retain") {
      if (parsed == 0) return false;
      flags->retain = parsed;
    } else {
      return false;
    }
  }
  return true;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string out_path = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/false,
                       &flags)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  // Stream the file in fixed-size blocks through the batched ingestion
  // path: bounded memory regardless of trace size, and each block gets
  // the chunked SIMD filter probes + sketch prefetching of UpdateBatch.
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  CliSketch sketch = MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  std::vector<Tuple> block;
  uint64_t ingested = 0;
  while (true) {
    if (const auto error = reader.ReadBlock(kBlockTuples, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    sketch.UpdateBatch(block);
    ingested += block.size();
  }
  if (!SaveSynopsis(sketch, out_path)) return 1;
  std::fprintf(stderr,
               "built %zu-byte synopsis from %llu tuples "
               "(selectivity %.3f, %llu exchanges)\n",
               sketch.MemoryUsageBytes(),
               static_cast<unsigned long long>(ingested),
               sketch.stats().FilterSelectivity(),
               static_cast<unsigned long long>(sketch.stats().exchanges));
  return 0;
}

int CmdCheckpoint(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string prefix = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/true,
                       &flags)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  SnapshotStore store(prefix, static_cast<uint32_t>(flags.retain));
  uint64_t ingested = 0;
  std::optional<CliSketch> sketch;
  if (flags.recover) {
    std::string error;
    if (auto loaded = store.Load(kCliCheckpointTag, &error)) {
      sketch = DecodeCheckpoint(loaded->payload, &ingested);
      if (!sketch.has_value()) {
        std::fprintf(stderr,
                     "generation %llu passed checksum but is not an "
                     "ASketch checkpoint\n",
                     static_cast<unsigned long long>(loaded->generation));
        return 1;
      }
      std::fprintf(stderr,
                   "recovered generation %llu (%u corrupt generation(s) "
                   "skipped), %llu tuples already ingested\n",
                   static_cast<unsigned long long>(loaded->generation),
                   loaded->generations_skipped,
                   static_cast<unsigned long long>(ingested));
    } else {
      std::fprintf(stderr, "starting fresh: %s\n", error.c_str());
    }
  }
  if (!sketch.has_value()) {
    sketch = MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  }
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  std::vector<Tuple> block;
  // Fast-forward past the tuples the recovered checkpoint already covers.
  uint64_t to_skip = ingested;
  while (to_skip > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(kBlockTuples, to_skip));
    if (const auto error = reader.ReadBlock(want, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) {
      std::fprintf(stderr,
                   "stream %s is shorter than the recovered checkpoint "
                   "(%llu tuples)\n",
                   stream_path.c_str(),
                   static_cast<unsigned long long>(ingested));
      return 1;
    }
    to_skip -= block.size();
  }
  // Ingest, splitting blocks at checkpoint boundaries so every run
  // checkpoints at exactly the same tuple counts.
  uint64_t saved_at = flags.recover ? ingested : ~uint64_t{0};
  uint64_t next_checkpoint = (ingested / flags.every + 1) * flags.every;
  while (true) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kBlockTuples, next_checkpoint - ingested));
    if (const auto error = reader.ReadBlock(want, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    sketch->UpdateBatch(block);
    ingested += block.size();
    if (ingested == next_checkpoint) {
      if (!SaveAndReload(store, ingested, &sketch)) return 1;
      saved_at = ingested;
      next_checkpoint += flags.every;
    }
  }
  if (saved_at != ingested) {
    if (!SaveAndReload(store, ingested, &sketch)) return 1;
  }
  std::fprintf(stderr,
               "checkpointed %llu tuples under %s (generation %llu)\n",
               static_cast<unsigned long long>(ingested), prefix.c_str(),
               static_cast<unsigned long long>(store.LatestGeneration()));
  return 0;
}

int CmdRestore(int argc, char** argv) {
  if (argc != 4) {
    Usage();
    return 2;
  }
  SnapshotStore store(argv[2]);
  std::string error;
  const auto loaded = store.Load(kCliCheckpointTag, &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t ingested = 0;
  const auto sketch = DecodeCheckpoint(loaded->payload, &ingested);
  if (!sketch.has_value()) {
    std::fprintf(stderr,
                 "generation %llu passed checksum but is not an ASketch "
                 "checkpoint\n",
                 static_cast<unsigned long long>(loaded->generation));
    return 1;
  }
  if (!SaveSynopsis(*sketch, argv[3])) return 1;
  std::fprintf(stderr,
               "restored generation %llu (%llu tuples) to %s\n",
               static_cast<unsigned long long>(loaded->generation),
               static_cast<unsigned long long>(ingested), argv[3]);
  return 0;
}

int CmdRecover(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  SnapshotStore store(argv[2]);
  std::string error;
  const auto loaded = store.Load(kCliCheckpointTag, &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "nothing to recover: %s\n", error.c_str());
    return 1;
  }
  uint64_t ingested = 0;
  if (!DecodeCheckpoint(loaded->payload, &ingested).has_value()) {
    std::fprintf(stderr,
                 "generation %llu passed checksum but is not an ASketch "
                 "checkpoint\n",
                 static_cast<unsigned long long>(loaded->generation));
    return 1;
  }
  std::printf("generation %llu\nskipped %u\ningested %llu\n",
              static_cast<unsigned long long>(loaded->generation),
              loaded->generations_skipped,
              static_cast<unsigned long long>(ingested));
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  for (int i = 3; i < argc; ++i) {
    uint64_t key = 0;
    if (!ParseU64(argv[i], &key) || key > ~item_t{0}) {
      std::fprintf(stderr, "invalid key: %s\n", argv[i]);
      return 2;
    }
    std::printf("%u\t%u\n", static_cast<item_t>(key),
                sketch->Estimate(static_cast<item_t>(key)));
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  std::printf("%-12s %-12s %-12s\n", "key", "estimate", "exact_hits");
  for (const FilterEntry& e : sketch->TopK()) {
    std::printf("%-12u %-12u %-12u\n", e.key, e.new_count,
                e.new_count - e.old_count);
  }
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  const ASketchStats& stats = sketch->stats();
  std::printf("synopsis            %s\n", sketch->Name().c_str());
  std::printf("memory bytes        %zu\n", sketch->MemoryUsageBytes());
  std::printf("sketch rows (w)     %u\n", sketch->sketch().width());
  std::printf("sketch depth (h')   %u\n", sketch->sketch().depth());
  std::printf("filter capacity     %u\n", sketch->filter().capacity());
  std::printf("filter occupancy    %u\n", sketch->filter().size());
  std::printf("filtered weight     %llu\n",
              static_cast<unsigned long long>(stats.filtered_weight));
  std::printf("sketch weight       %llu\n",
              static_cast<unsigned long long>(stats.sketch_weight));
  std::printf("filter selectivity  %.4f\n", stats.FilterSelectivity());
  std::printf("exchanges           %llu\n",
              static_cast<unsigned long long>(stats.exchanges));
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc != 5) {
    Usage();
    return 2;
  }
  auto a = LoadSynopsis(argv[2]);
  auto b = LoadSynopsis(argv[3]);
  if (!a.has_value() || !b.has_value()) return 1;
  if (const auto error = a->MergeFrom(*b)) {
    std::fprintf(stderr, "merge failed: %s\n", error->c_str());
    return 1;
  }
  if (!SaveSynopsis(*a, argv[4])) return 1;
  std::fprintf(stderr, "merged synopsis written to %s\n", argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "build") return CmdBuild(argc, argv);
  if (command == "checkpoint") return CmdCheckpoint(argc, argv);
  if (command == "restore") return CmdRestore(argc, argv);
  if (command == "recover") return CmdRecover(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "topk") return CmdTopK(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "merge") return CmdMerge(argc, argv);
  Usage();
  return 2;
}
