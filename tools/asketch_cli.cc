// asketch_cli: build, persist, checkpoint, and query ASketch synopses
// from the command line.
//
//   asketch_cli build <stream.ask> <synopsis.as> [--bytes N] [--width W]
//                     [--filter F] [--seed S]
//       Consume a binary stream file (see make_stream) into an ASketch
//       and serialize the synopsis.
//
//   asketch_cli checkpoint <stream.ask> <prefix> [build flags]
//                          [--every N] [--retain K] [--recover]
//       Like build, but persist a crash-consistent snapshot (see
//       src/common/snapshot.h) under <prefix>.<gen>.snap every N tuples
//       and at the end, keeping the last K generations. With --recover,
//       resume from the newest intact checkpoint instead of starting
//       over: the run re-reads the stream, skips the tuples already
//       ingested, and continues. After every save the process re-adopts
//       its own checkpoint, so the in-memory trajectory is a
//       deterministic function of (stream, interval) and a recovered run
//       produces a bit-identical final synopsis to an uninterrupted one.
//
//   asketch_cli restore <prefix> <synopsis.as>
//       Extract the newest intact checkpoint into a plain synopsis file
//       usable by query/topk/stats.
//
//   asketch_cli recover <prefix>
//       Report which checkpoint generation would be recovered (and how
//       many newer, corrupt generations would be skipped).
//
//   asketch_cli query <synopsis.as> <key> [key...]
//       Print frequency estimates for the given keys.
//
//   asketch_cli topk <synopsis.as>
//       Print the filter's heavy-hitter report.
//
//   asketch_cli stats <synopsis.as> [--json]
//       Print size, selectivity, and exchange statistics (--json emits
//       the same fields as the serve-metrics /stats endpoint).
//
//   asketch_cli merge <a.as> <b.as> <out.as>
//       Merge two synopses built with identical parameters.
//
//   asketch_cli serve-metrics <stream.ask> <prefix> [checkpoint flags]
//                             [--port P] [--linger-ms L]
//       Run a checkpoint ingest with a live telemetry HTTP server on
//       127.0.0.1:P (0 = ephemeral, printed at startup). Endpoints:
//       /metrics (Prometheus text), /metrics.json, /stats (synopsis
//       stats JSON), /trace.json. With --linger-ms the server stays up
//       that long after ingestion finishes.
//
//   asketch_cli trace <stream.ask> <trace.json> [build flags]
//       Build with span tracing enabled and write the collected events
//       as Chrome/Perfetto trace_event JSON (chrome://tracing).
//
// build/checkpoint/serve-metrics also accept --metrics-out <file>: the
// final telemetry registry is written there as Prometheus text.
//
// Checkpoints embed the telemetry registry (counters + histograms), so a
// --recover run continues its cumulative metrics instead of resetting
// them to the post-crash partial counts. Both checkpoint payload formats
// are readable: "CKP2" (tuple count + sketch + metrics record) is
// written; legacy "CKP1" (no metrics) is still accepted.
//
// The synopsis on disk is the library's binary serialization of
// ASketch<RelaxedHeapFilter, CountMin>; synopsis files are published
// atomically (temp file + fsync + rename). Every failure path exits
// nonzero: 2 for usage errors, 1 for runtime failures.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/serialize.h"
#include "src/common/snapshot.h"
#include "src/core/asketch.h"
#include "src/obs/core_metrics.h"
#include "src/obs/export.h"
#include "src/obs/http_exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/metrics_persist.h"
#include "src/obs/trace.h"
#include "src/workload/dataset_io.h"

namespace {

using namespace asketch;
using CliSketch = ASketch<RelaxedHeapFilter, CountMin>;

/// Snapshot payload tags for CLI checkpoints. Application tags live
/// outside the library's 0x41 composed-tag namespace.
///
/// "CKP1": u64 ingested-tuple count + CliSketch blob (legacy, read-only).
/// "CKP2": CKP1 layout followed by a telemetry metrics record
///         (src/obs/metrics_persist.h) — what this binary writes.
constexpr uint32_t kCliCheckpointTag = 0x31504b43u;    // "CKP1"
constexpr uint32_t kCliCheckpointTagV2 = 0x32504b43u;  // "CKP2"

constexpr size_t kBlockTuples = 1 << 16;

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  asketch_cli build <stream.ask> <synopsis.as> "
      "[--bytes N] [--width W] [--filter F] [--seed S] "
      "[--metrics-out <file>]\n"
      "  asketch_cli checkpoint <stream.ask> <prefix> [build flags] "
      "[--every N] [--retain K] [--recover]\n"
      "  asketch_cli restore <prefix> <synopsis.as>\n"
      "  asketch_cli recover <prefix>\n"
      "  asketch_cli query <synopsis.as> <key> [key...]\n"
      "  asketch_cli topk  <synopsis.as>\n"
      "  asketch_cli stats <synopsis.as> [--json]\n"
      "  asketch_cli merge <a.as> <b.as> <out.as>\n"
      "  asketch_cli serve-metrics <stream.ask> <prefix> "
      "[checkpoint flags] [--port P] [--linger-ms L]\n"
      "  asketch_cli trace <stream.ask> <trace.json> [build flags]\n");
}

/// Strict decimal parse; false on empty/trailing-garbage/overflow input.
bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

std::optional<CliSketch> LoadSynopsis(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  BinaryReader reader(f);
  auto sketch = CliSketch::DeserializeFrom(reader);
  std::fclose(f);
  if (!sketch.has_value()) {
    std::fprintf(stderr, "%s is not a valid ASketch synopsis\n",
                 path.c_str());
  }
  return sketch;
}

bool SaveSynopsis(const CliSketch& sketch, const std::string& path) {
  BinaryWriter writer;
  if (!sketch.SerializeTo(writer)) {
    std::fprintf(stderr, "serialization failed for %s\n", path.c_str());
    return false;
  }
  // Atomic publication: a crash mid-write can never leave a torn
  // synopsis under the final name.
  if (const auto error = WriteFileAtomic(path, writer.buffer())) {
    std::fprintf(stderr, "write failed: %s\n", error->c_str());
    return false;
  }
  return true;
}

std::vector<uint8_t> EncodeCheckpoint(const CliSketch& sketch,
                                      uint64_t ingested) {
  BinaryWriter writer;
  writer.Reserve(sizeof(uint64_t) + sketch.MemoryUsageBytes());
  writer.PutU64(ingested);
  sketch.SerializeTo(writer);
  // CKP2: the telemetry registry rides along so a recovered run keeps
  // its cumulative counters.
  obs::SerializeMetricsTo(obs::MetricsRegistry::Global(), writer);
  return writer.buffer();
}

/// Decodes a CKP1 or CKP2 payload (selected by `tag`). For CKP2,
/// `apply_metrics` controls whether the embedded metrics record is merged
/// into the live registry — true only on the recovery path; the
/// SaveAndReload re-adoption must NOT re-apply a record that describes
/// counts the process already holds.
std::optional<CliSketch> DecodeCheckpoint(
    const std::vector<uint8_t>& payload, uint32_t tag, uint64_t* ingested,
    bool apply_metrics) {
  BinaryReader reader(payload.data(), payload.size());
  if (!reader.GetU64(ingested)) return std::nullopt;
  auto sketch = CliSketch::DeserializeFrom(reader);
  if (!sketch.has_value()) return std::nullopt;
  if (tag == kCliCheckpointTagV2 && apply_metrics) {
    if (!obs::RestoreMetricsInto(obs::MetricsRegistry::Global(), reader)) {
      // The envelope CRC already vouched for the bytes, so a parse
      // failure means a writer/reader mismatch; the sketch itself is
      // intact, so warn and continue rather than fail the recovery.
      std::fprintf(stderr,
                   "warning: checkpoint metrics record not restored\n");
    }
  }
  return sketch;
}

/// Loads the newest intact checkpoint, preferring the CKP2 format and
/// falling back to legacy CKP1 stores. `tag` reports which format the
/// returned payload uses.
std::optional<SnapshotStore::Loaded> LoadCheckpoint(
    const SnapshotStore& store, uint32_t* tag, std::string* error) {
  if (auto loaded = store.Load(kCliCheckpointTagV2, error)) {
    *tag = kCliCheckpointTagV2;
    return loaded;
  }
  std::string legacy_error;
  if (auto loaded = store.Load(kCliCheckpointTag, &legacy_error)) {
    *tag = kCliCheckpointTag;
    return loaded;
  }
  return std::nullopt;  // report the V2 attempt's error
}

/// Persists a checkpoint and re-adopts the just-written state, so every
/// run — clean or recovered — continues from the same (deserialization-
/// normalized) filter layout. See the checkpoint section of the file
/// comment.
bool SaveAndReload(SnapshotStore& store, uint64_t ingested,
                   std::optional<CliSketch>* sketch) {
  const std::vector<uint8_t> payload = EncodeCheckpoint(**sketch, ingested);
  if (const auto error = store.Save(kCliCheckpointTagV2, payload)) {
    std::fprintf(stderr, "checkpoint failed: %s\n", error->c_str());
    return false;
  }
  uint64_t check = 0;
  auto reloaded = DecodeCheckpoint(payload, kCliCheckpointTagV2, &check,
                                   /*apply_metrics=*/false);
  if (!reloaded.has_value() || check != ingested) {
    std::fprintf(stderr, "checkpoint round-trip failed at %llu tuples\n",
                 static_cast<unsigned long long>(ingested));
    return false;
  }
  *sketch = std::move(reloaded);
  return true;
}

/// Writes the live registry as Prometheus text to `path` (for
/// --metrics-out). Empty path is a no-op.
bool DumpMetricsTo(const std::string& path) {
  if (path.empty()) return true;
  const std::string text =
      obs::RenderPrometheusText(obs::MetricsRegistry::Global().Collect());
  const std::vector<uint8_t> bytes(text.begin(), text.end());
  if (const auto error = WriteFileAtomic(path, bytes)) {
    std::fprintf(stderr, "metrics write failed: %s\n", error->c_str());
    return false;
  }
  return true;
}

/// Parsed flag set shared by build, checkpoint, and serve-metrics.
struct BuildFlags {
  ASketchConfig config;
  uint64_t every = 1 << 20;
  uint64_t retain = 3;
  bool recover = false;
  std::string metrics_out;  ///< --metrics-out: Prometheus dump path
  uint64_t port = 0;        ///< --port (serve-metrics; 0 = ephemeral)
  uint64_t linger_ms = 0;   ///< --linger-ms (serve-metrics)
};

bool ParseBuildFlags(int argc, char** argv, int first,
                     bool allow_checkpoint_flags, BuildFlags* flags,
                     bool allow_serve_flags = false) {
  flags->config.total_bytes = 128 * 1024;
  flags->config.width = 8;
  flags->config.filter_items = 32;
  for (int i = first; i < argc; ++i) {
    std::string flag = argv[i];
    // Both `--flag value` and `--flag=value` spellings are accepted.
    std::string inline_value;
    bool has_inline_value = false;
    if (const size_t eq = flag.find('='); eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag.resize(eq);
      has_inline_value = true;
    }
    if (allow_checkpoint_flags && flag == "--recover") {
      if (has_inline_value) return false;
      flags->recover = true;
      continue;
    }
    const char* value = inline_value.c_str();
    if (!has_inline_value) {
      if (i + 1 >= argc) return false;
      value = argv[++i];
    }
    if (flag == "--metrics-out") {
      flags->metrics_out = value;
      continue;
    }
    uint64_t parsed = 0;
    if (!ParseU64(value, &parsed)) return false;
    if (flag == "--bytes") {
      flags->config.total_bytes = parsed;
    } else if (flag == "--width") {
      flags->config.width = static_cast<uint32_t>(parsed);
    } else if (flag == "--filter") {
      flags->config.filter_items = static_cast<uint32_t>(parsed);
    } else if (flag == "--seed") {
      flags->config.seed = parsed;
    } else if (allow_checkpoint_flags && flag == "--every") {
      if (parsed == 0) return false;
      flags->every = parsed;
    } else if (allow_checkpoint_flags && flag == "--retain") {
      if (parsed == 0) return false;
      flags->retain = parsed;
    } else if (allow_serve_flags && flag == "--port") {
      if (parsed > 65535) return false;
      flags->port = parsed;
    } else if (allow_serve_flags && flag == "--linger-ms") {
      flags->linger_ms = parsed;
    } else {
      return false;
    }
  }
  return true;
}

int CmdBuild(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string out_path = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/false,
                       &flags)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  // Stream the file in fixed-size blocks through the batched ingestion
  // path: bounded memory regardless of trace size, and each block gets
  // the chunked SIMD filter probes + sketch prefetching of UpdateBatch.
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  CliSketch sketch = MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  std::vector<Tuple> block;
  uint64_t ingested = 0;
  while (true) {
    if (const auto error = reader.ReadBlock(kBlockTuples, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    sketch.UpdateBatch(block);
    ingested += block.size();
  }
  if (!SaveSynopsis(sketch, out_path)) return 1;
  std::fprintf(stderr,
               "built %zu-byte synopsis from %llu tuples "
               "(selectivity %.3f, %llu exchanges)\n",
               sketch.MemoryUsageBytes(),
               static_cast<unsigned long long>(ingested),
               sketch.stats().FilterSelectivity(),
               static_cast<unsigned long long>(sketch.stats().exchanges));
  if (!DumpMetricsTo(flags.metrics_out)) return 1;
  return 0;
}

/// The checkpoint ingest core shared by `checkpoint` and
/// `serve-metrics`. When `live_mutex` is non-null it is held across
/// every mutation of *sketch (block ingest, checkpoint re-adoption), so
/// concurrent HTTP handlers may read the sketch under the same mutex at
/// block granularity.
int RunCheckpointIngest(const std::string& stream_path,
                        const std::string& prefix, const BuildFlags& flags,
                        std::mutex* live_mutex,
                        std::optional<CliSketch>* sketch_out,
                        uint64_t* ingested_out) {
  SnapshotStore store(prefix, static_cast<uint32_t>(flags.retain));
  uint64_t ingested = 0;
  std::optional<CliSketch>& sketch = *sketch_out;
  if (flags.recover) {
    std::string error;
    uint32_t tag = 0;
    if (auto loaded = LoadCheckpoint(store, &tag, &error)) {
      // The embedded metrics record is merged here — the one place a
      // checkpoint's telemetry describes work this process hasn't
      // already counted.
      auto recovered = DecodeCheckpoint(loaded->payload, tag, &ingested,
                                        /*apply_metrics=*/true);
      if (!recovered.has_value()) {
        std::fprintf(stderr,
                     "generation %llu passed checksum but is not an "
                     "ASketch checkpoint\n",
                     static_cast<unsigned long long>(loaded->generation));
        return 1;
      }
      if (live_mutex != nullptr) {
        std::lock_guard<std::mutex> lock(*live_mutex);
        sketch = std::move(recovered);
      } else {
        sketch = std::move(recovered);
      }
      std::fprintf(stderr,
                   "recovered generation %llu (%u corrupt generation(s) "
                   "skipped), %llu tuples already ingested\n",
                   static_cast<unsigned long long>(loaded->generation),
                   loaded->generations_skipped,
                   static_cast<unsigned long long>(ingested));
    } else {
      std::fprintf(stderr, "starting fresh: %s\n", error.c_str());
    }
  }
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  std::vector<Tuple> block;
  // Fast-forward past the tuples the recovered checkpoint already covers.
  uint64_t to_skip = ingested;
  while (to_skip > 0) {
    const size_t want =
        static_cast<size_t>(std::min<uint64_t>(kBlockTuples, to_skip));
    if (const auto error = reader.ReadBlock(want, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) {
      std::fprintf(stderr,
                   "stream %s is shorter than the recovered checkpoint "
                   "(%llu tuples)\n",
                   stream_path.c_str(),
                   static_cast<unsigned long long>(ingested));
      return 1;
    }
    to_skip -= block.size();
  }
  // Ingest, splitting blocks at checkpoint boundaries so every run
  // checkpoints at exactly the same tuple counts.
  uint64_t saved_at = flags.recover ? ingested : ~uint64_t{0};
  uint64_t next_checkpoint = (ingested / flags.every + 1) * flags.every;
  while (true) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(kBlockTuples, next_checkpoint - ingested));
    if (const auto error = reader.ReadBlock(want, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    {
      std::unique_lock<std::mutex> lock;
      if (live_mutex != nullptr) {
        lock = std::unique_lock<std::mutex>(*live_mutex);
      }
      sketch->UpdateBatch(block);
      ingested += block.size();
      if (ingested == next_checkpoint) {
        if (!SaveAndReload(store, ingested, &sketch)) return 1;
        saved_at = ingested;
        next_checkpoint += flags.every;
      }
    }
  }
  if (saved_at != ingested) {
    std::unique_lock<std::mutex> lock;
    if (live_mutex != nullptr) {
      lock = std::unique_lock<std::mutex>(*live_mutex);
    }
    if (!SaveAndReload(store, ingested, &sketch)) return 1;
  }
  std::fprintf(stderr,
               "checkpointed %llu tuples under %s (generation %llu)\n",
               static_cast<unsigned long long>(ingested), prefix.c_str(),
               static_cast<unsigned long long>(store.LatestGeneration()));
  *ingested_out = ingested;
  return 0;
}

int CmdCheckpoint(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string prefix = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/true,
                       &flags)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  std::optional<CliSketch> sketch =
      MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  uint64_t ingested = 0;
  const int rc = RunCheckpointIngest(stream_path, prefix, flags,
                                     /*live_mutex=*/nullptr, &sketch,
                                     &ingested);
  if (rc != 0) return rc;
  if (!DumpMetricsTo(flags.metrics_out)) return 1;
  return 0;
}

int CmdRestore(int argc, char** argv) {
  if (argc != 4) {
    Usage();
    return 2;
  }
  SnapshotStore store(argv[2]);
  std::string error;
  uint32_t tag = 0;
  const auto loaded = LoadCheckpoint(store, &tag, &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t ingested = 0;
  // Extraction only re-publishes the sketch; the embedded metrics
  // describe the checkpointing process, not this one.
  const auto sketch = DecodeCheckpoint(loaded->payload, tag, &ingested,
                                       /*apply_metrics=*/false);
  if (!sketch.has_value()) {
    std::fprintf(stderr,
                 "generation %llu passed checksum but is not an ASketch "
                 "checkpoint\n",
                 static_cast<unsigned long long>(loaded->generation));
    return 1;
  }
  if (!SaveSynopsis(*sketch, argv[3])) return 1;
  std::fprintf(stderr,
               "restored generation %llu (%llu tuples) to %s\n",
               static_cast<unsigned long long>(loaded->generation),
               static_cast<unsigned long long>(ingested), argv[3]);
  return 0;
}

int CmdRecover(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  SnapshotStore store(argv[2]);
  std::string error;
  uint32_t tag = 0;
  const auto loaded = LoadCheckpoint(store, &tag, &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "nothing to recover: %s\n", error.c_str());
    return 1;
  }
  uint64_t ingested = 0;
  if (!DecodeCheckpoint(loaded->payload, tag, &ingested,
                        /*apply_metrics=*/false)
           .has_value()) {
    std::fprintf(stderr,
                 "generation %llu passed checksum but is not an ASketch "
                 "checkpoint\n",
                 static_cast<unsigned long long>(loaded->generation));
    return 1;
  }
  std::printf("generation %llu\nskipped %u\ningested %llu\n",
              static_cast<unsigned long long>(loaded->generation),
              loaded->generations_skipped,
              static_cast<unsigned long long>(ingested));
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  for (int i = 3; i < argc; ++i) {
    uint64_t key = 0;
    if (!ParseU64(argv[i], &key) || key > ~item_t{0}) {
      std::fprintf(stderr, "invalid key: %s\n", argv[i]);
      return 2;
    }
    std::printf("%u\t%u\n", static_cast<item_t>(key),
                sketch->Estimate(static_cast<item_t>(key)));
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc != 3) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  std::printf("%-12s %-12s %-12s\n", "key", "estimate", "exact_hits");
  for (const FilterEntry& e : sketch->TopK()) {
    std::printf("%-12u %-12u %-12u\n", e.key, e.new_count,
                e.new_count - e.old_count);
  }
  return 0;
}

/// The synopsis-stats JSON shape shared by `stats --json` and the
/// serve-metrics /stats endpoint.
std::string RenderSynopsisStatsJson(const CliSketch& sketch) {
  const ASketchStats& stats = sketch.stats();
  char buffer[640];
  std::snprintf(
      buffer, sizeof(buffer),
      "{\"synopsis\":\"%s\",\"memory_bytes\":%zu,\"sketch_rows\":%u,"
      "\"sketch_depth\":%u,\"filter_capacity\":%u,"
      "\"filter_occupancy\":%u,\"filtered_weight\":%llu,"
      "\"sketch_weight\":%llu,\"filter_selectivity\":%.6f,"
      "\"exchanges\":%llu,\"exchange_writebacks\":%llu,"
      "\"sketch_updates\":%llu}\n",
      sketch.Name().c_str(), sketch.MemoryUsageBytes(),
      sketch.sketch().width(), sketch.sketch().depth(),
      sketch.filter().capacity(), sketch.filter().size(),
      static_cast<unsigned long long>(stats.filtered_weight),
      static_cast<unsigned long long>(stats.sketch_weight),
      stats.FilterSelectivity(),
      static_cast<unsigned long long>(stats.exchanges),
      static_cast<unsigned long long>(stats.exchange_writebacks),
      static_cast<unsigned long long>(stats.sketch_updates));
  return buffer;
}

int CmdStats(int argc, char** argv) {
  const bool json = argc == 4 && std::strcmp(argv[3], "--json") == 0;
  if (argc != 3 && !json) {
    Usage();
    return 2;
  }
  auto sketch = LoadSynopsis(argv[2]);
  if (!sketch.has_value()) return 1;
  if (json) {
    std::fputs(RenderSynopsisStatsJson(*sketch).c_str(), stdout);
    return 0;
  }
  const ASketchStats& stats = sketch->stats();
  std::printf("synopsis            %s\n", sketch->Name().c_str());
  std::printf("memory bytes        %zu\n", sketch->MemoryUsageBytes());
  std::printf("sketch rows (w)     %u\n", sketch->sketch().width());
  std::printf("sketch depth (h')   %u\n", sketch->sketch().depth());
  std::printf("filter capacity     %u\n", sketch->filter().capacity());
  std::printf("filter occupancy    %u\n", sketch->filter().size());
  std::printf("filtered weight     %llu\n",
              static_cast<unsigned long long>(stats.filtered_weight));
  std::printf("sketch weight       %llu\n",
              static_cast<unsigned long long>(stats.sketch_weight));
  std::printf("filter selectivity  %.4f\n", stats.FilterSelectivity());
  std::printf("exchanges           %llu\n",
              static_cast<unsigned long long>(stats.exchanges));
  return 0;
}

int CmdServeMetrics(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string prefix = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/true,
                       &flags, /*allow_serve_flags=*/true)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  if (!obs::TelemetryCompiledIn()) {
    std::fprintf(stderr,
                 "warning: built with ASKETCH_NO_TELEMETRY; endpoints "
                 "will serve empty metrics\n");
  }
  // Record spans too, so /trace.json shows the ingest/checkpoint timeline.
  obs::TraceRegistry::Global().SetEnabled(true);
#ifndef ASKETCH_NO_TELEMETRY
  // Pre-register the pipeline family so its series (shed weight, degraded,
  // worker-dead) are present in the exposition even before any
  // PipelineASketch runs in this process; per-instance queue-depth gauges
  // appear as pipelines come up.
  (void)obs::PipelineMetrics::Get();
  (void)obs::SnapshotMetrics::Get();
#endif

  std::optional<CliSketch> sketch =
      MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  std::mutex sketch_mutex;

  obs::MetricsHttpServer server;
  server.AddHandler("/metrics", "text/plain; version=0.0.4", [] {
    return obs::RenderPrometheusText(
        obs::MetricsRegistry::Global().Collect());
  });
  server.AddHandler("/metrics.json", "application/json", [] {
    return obs::RenderMetricsJson(
        obs::MetricsRegistry::Global().Collect());
  });
  server.AddHandler("/stats", "application/json",
                    [&sketch, &sketch_mutex] {
                      std::lock_guard<std::mutex> lock(sketch_mutex);
                      return RenderSynopsisStatsJson(*sketch);
                    });
  server.AddHandler("/trace.json", "application/json", [] {
    return obs::RenderTraceJson(obs::TraceRegistry::Global().Collect());
  });
  if (!server.Start(static_cast<uint16_t>(flags.port))) {
    std::fprintf(stderr, "cannot bind 127.0.0.1:%llu\n",
                 static_cast<unsigned long long>(flags.port));
    return 1;
  }
  // Announced on stdout (and flushed) so scripts can scrape the
  // ephemeral port before ingestion finishes.
  std::printf("serving metrics on http://127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  uint64_t ingested = 0;
  const int rc = RunCheckpointIngest(stream_path, prefix, flags,
                                     &sketch_mutex, &sketch, &ingested);
  if (rc != 0) {
    server.Stop();
    return rc;
  }
  if (flags.linger_ms > 0) {
    std::fprintf(stderr, "lingering %llu ms for scrapes...\n",
                 static_cast<unsigned long long>(flags.linger_ms));
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.linger_ms));
  }
  server.Stop();
  std::fprintf(stderr, "served %llu request(s)\n",
               static_cast<unsigned long long>(server.requests()));
  if (!DumpMetricsTo(flags.metrics_out)) return 1;
  return 0;
}

int CmdTrace(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string stream_path = argv[2];
  const std::string out_path = argv[3];
  BuildFlags flags;
  if (!ParseBuildFlags(argc, argv, 4, /*allow_checkpoint_flags=*/false,
                       &flags)) {
    Usage();
    return 2;
  }
  if (const auto error = flags.config.Validate()) {
    std::fprintf(stderr, "invalid config: %s\n", error->c_str());
    return 2;
  }
  if (!obs::TelemetryCompiledIn()) {
    std::fprintf(stderr,
                 "warning: built with ASKETCH_NO_TELEMETRY; the trace "
                 "will be empty\n");
  }
  obs::TraceRegistry::Global().SetEnabled(true);
  StreamFileReader reader;
  if (const auto error = reader.Open(stream_path)) {
    std::fprintf(stderr, "read failed: %s\n", error->c_str());
    return 1;
  }
  CliSketch sketch = MakeASketchCountMin<RelaxedHeapFilter>(flags.config);
  std::vector<Tuple> block;
  uint64_t ingested = 0;
  while (true) {
    if (const auto error = reader.ReadBlock(kBlockTuples, &block)) {
      std::fprintf(stderr, "read failed: %s\n", error->c_str());
      return 1;
    }
    if (block.empty()) break;
    sketch.UpdateBatch(block);
    ingested += block.size();
  }
  obs::TraceRegistry::Global().SetEnabled(false);
  const auto events = obs::TraceRegistry::Global().Collect();
  const std::string json = obs::RenderTraceJson(events);
  const std::vector<uint8_t> bytes(json.begin(), json.end());
  if (const auto error = WriteFileAtomic(out_path, bytes)) {
    std::fprintf(stderr, "trace write failed: %s\n", error->c_str());
    return 1;
  }
  std::fprintf(
      stderr,
      "traced %llu tuples: %zu event(s), %llu overwritten; load %s in "
      "chrome://tracing\n",
      static_cast<unsigned long long>(ingested), events.size(),
      static_cast<unsigned long long>(
          obs::TraceRegistry::Global().DroppedEvents()),
      out_path.c_str());
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc != 5) {
    Usage();
    return 2;
  }
  auto a = LoadSynopsis(argv[2]);
  auto b = LoadSynopsis(argv[3]);
  if (!a.has_value() || !b.has_value()) return 1;
  if (const auto error = a->MergeFrom(*b)) {
    std::fprintf(stderr, "merge failed: %s\n", error->c_str());
    return 1;
  }
  if (!SaveSynopsis(*a, argv[4])) return 1;
  std::fprintf(stderr, "merged synopsis written to %s\n", argv[4]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "build") return CmdBuild(argc, argv);
  if (command == "checkpoint") return CmdCheckpoint(argc, argv);
  if (command == "restore") return CmdRestore(argc, argv);
  if (command == "recover") return CmdRecover(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "topk") return CmdTopK(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "merge") return CmdMerge(argc, argv);
  if (command == "serve-metrics") return CmdServeMetrics(argc, argv);
  if (command == "trace") return CmdTrace(argc, argv);
  Usage();
  return 2;
}
