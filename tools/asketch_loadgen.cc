// asketch_loadgen — closed/open-loop benchmark and ops probe for
// asketchd (docs/OPERATIONS.md, EXPERIMENTS.md serving section).
//
//   asketch_loadgen --port P [--host H] [--connections C] [--tuples N]
//                   [--keys M] [--skew Z] [--seed S] [--batch B]
//                   [--ack-every A] [--window W] [--mode closed|open]
//                   [--rate R] [--verify] [--connect-timeout-ms T]
//                   [--io-timeout-ms T] [--retries R] [--backoff-ms B]
//                   [--reconnect] [--deadline-s D]
//       Drive UPDATE traffic and report aggregate updates/s. Closed
//       loop (default) sends as fast as the ack window allows; open
//       loop paces batches to --rate updates/s total across all
//       connections and reports the achieved rate. --verify issues a
//       QUERY_BATCH sample afterwards and checks every estimate >= the
//       exact sent count (the one-sided guarantee, over the wire).
//
//       Resilience (all off by default): --connect-timeout-ms /
//       --io-timeout-ms arm the client deadlines, --retries/--backoff-ms
//       the idempotent-request retry policy, and --reconnect the
//       redial + replay-from-last-ack path (at-least-once delivery; the
//       one-sided bound tolerates the duplicates). --deadline-s bounds
//       the whole load phase by wall clock — with the I/O deadlines
//       armed no call can block forever, so a hung server fails the run
//       instead of wedging it (CI smokes rely on this).
//
//   asketch_loadgen --port P --snapshot
//       Request a checkpoint; print its generation/ingested/digest.
//
//   asketch_loadgen --port P --probe
//       Print the server's current state digest and STATS counters.
//
// The workload is the paper's default: Zipf keys (skew 1.5 unless
// overridden), unit weights, pre-generated in memory so generation cost
// never pollutes the throughput measurement. Tuples are split evenly
// across connections; each connection runs one thread with one
// pipelined Client.
//
// Exit codes: 2 usage error, 1 runtime/verification failure.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/client.h"
#include "src/workload/stream_generator.h"

namespace {

using namespace asketch;

int Usage() {
  std::fprintf(
      stderr,
      "usage: asketch_loadgen --port P [--host H] [--connections C]\n"
      "                       [--tuples N] [--keys M] [--skew Z]\n"
      "                       [--seed S] [--batch B] [--ack-every A]\n"
      "                       [--window W] [--mode closed|open]\n"
      "                       [--rate R] [--verify]\n"
      "                       [--connect-timeout-ms T] [--io-timeout-ms T]\n"
      "                       [--retries R] [--backoff-ms B] [--reconnect]\n"
      "                       [--deadline-s D]\n"
      "       asketch_loadgen --port P --snapshot\n"
      "       asketch_loadgen --port P --probe\n");
  return 2;
}

/// Strict decimal parse; false on empty/trailing-garbage/overflow input.
bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

struct LoadgenConfig {
  net::ClientOptions client;
  uint64_t connections = 1;
  uint64_t tuples = 4u << 20;  // paper-scale/8; ~2s at the target rate
  uint64_t keys = 1u << 20;
  double skew = 1.5;
  uint64_t seed = 7;
  uint64_t batch = 8192;
  bool open_loop = false;
  uint64_t rate = 0;  ///< open loop: target updates/s across connections
  bool verify = false;
  uint64_t deadline_s = 0;  ///< wall-clock bound on the load phase
};

struct WorkerResult {
  uint64_t sent = 0;
  uint64_t shed = 0;
  uint64_t reconnects = 0;
  uint64_t retries = 0;
  uint64_t replayed = 0;
  std::string error;
};

void RunWorker(const LoadgenConfig& config,
               const std::vector<Tuple>& tuples, size_t begin, size_t end,
               WorkerResult* result) {
  const auto wall_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::seconds(config.deadline_s);
  net::Client client;
  if (auto error = client.Connect(config.client)) {
    result->error = *error;
    return;
  }
  // Open-loop pacing: each connection owes (rate / connections)
  // updates/s, i.e. one batch every batch/(per-conn rate) seconds.
  const double per_conn_rate =
      config.rate > 0
          ? static_cast<double>(config.rate) /
                static_cast<double>(config.connections)
          : 0.0;
  const auto start = std::chrono::steady_clock::now();
  uint64_t sent = 0;
  for (size_t offset = begin; offset < end;
       offset += config.batch) {
    if (config.deadline_s > 0 &&
        std::chrono::steady_clock::now() > wall_deadline) {
      result->error = "wall-clock deadline exceeded (--deadline-s)";
      return;
    }
    const size_t n = std::min<size_t>(config.batch, end - offset);
    if (auto error = client.Update(
            std::span<const Tuple>(tuples.data() + offset, n))) {
      result->error = *error;
      return;
    }
    sent += n;
    if (config.open_loop && per_conn_rate > 0) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(sent) / per_conn_rate));
      std::this_thread::sleep_until(due);
    }
  }
  if (auto error = client.Flush()) {
    result->error = *error;
    return;
  }
  result->sent = sent;
  result->shed = client.last_ack().shed_weight;
  result->reconnects = client.reconnects();
  result->retries = client.retries();
  result->replayed = client.replayed_tuples();
}

int RunSnapshotOp(const net::ClientOptions& options) {
  net::Client client;
  if (auto error = client.Connect(options)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  net::StateDigest digest;
  if (auto error = client.Snapshot(&digest)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  std::printf("snapshot generation=%llu ingested=%llu digest=0x%08x\n",
              static_cast<unsigned long long>(digest.generation),
              static_cast<unsigned long long>(digest.ingested),
              digest.digest);
  return 0;
}

int RunProbeOp(const net::ClientOptions& options) {
  net::Client client;
  if (auto error = client.Connect(options)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  net::StateDigest digest;
  if (auto error = client.Digest(&digest)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  net::WireStats stats;
  if (auto error = client.Stats(&stats)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  std::printf("digest generation=%llu ingested=%llu digest=0x%08x\n",
              static_cast<unsigned long long>(digest.generation),
              static_cast<unsigned long long>(digest.ingested),
              digest.digest);
  std::printf(
      "stats shards=%u ingested=%llu shed=%llu inline=%llu "
      "filtered=%llu sketch=%llu exchanges=%llu memory=%llu\n",
      stats.num_shards, static_cast<unsigned long long>(stats.ingested),
      static_cast<unsigned long long>(stats.shed_weight),
      static_cast<unsigned long long>(stats.inline_applied),
      static_cast<unsigned long long>(stats.filtered_weight),
      static_cast<unsigned long long>(stats.sketch_weight),
      static_cast<unsigned long long>(stats.exchanges),
      static_cast<unsigned long long>(stats.memory_bytes));
  return 0;
}

/// One-sided check over the wire: every sampled estimate must be >= the
/// exact count the loadgen itself sent for that key.
int VerifyOneSided(const net::ClientOptions& options,
                   const std::vector<Tuple>& tuples) {
  std::unordered_map<item_t, uint64_t> exact;
  for (const Tuple& t : tuples) exact[t.key] += t.value;
  std::vector<item_t> sample;
  for (const auto& [key, count] : exact) {
    sample.push_back(key);
    if (sample.size() >= 4096) break;
  }
  net::Client client;
  if (auto error = client.Connect(options)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  // DIGEST drains the shard queues, so the estimates below reflect
  // every tuple the workers' Flush() acks covered.
  net::StateDigest barrier;
  if (auto error = client.Digest(&barrier)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  std::vector<uint64_t> estimates;
  if (auto error = client.QueryBatch(sample, &estimates)) {
    std::fprintf(stderr, "loadgen: %s\n", error->c_str());
    return 1;
  }
  uint64_t violations = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    if (estimates[i] < exact[sample[i]]) ++violations;
  }
  std::printf("verify sampled=%zu one_sided_violations=%llu\n",
              sample.size(), static_cast<unsigned long long>(violations));
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenConfig config;
  bool snapshot_op = false;
  bool probe_op = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t n = 0;
    if (arg == "--snapshot") {
      snapshot_op = true;
    } else if (arg == "--probe") {
      probe_op = true;
    } else if (arg == "--verify") {
      config.verify = true;
    } else if (arg == "--host") {
      const char* v = value();
      if (v == nullptr) return Usage();
      config.client.host = v;
    } else if (arg == "--port") {
      if (!ParseU64(value(), &n) || n == 0 || n > 65535) return Usage();
      config.client.port = static_cast<uint16_t>(n);
    } else if (arg == "--connections") {
      if (!ParseU64(value(), &config.connections) ||
          config.connections < 1 || config.connections > 64) {
        return Usage();
      }
    } else if (arg == "--tuples") {
      if (!ParseU64(value(), &config.tuples) || config.tuples < 1) {
        return Usage();
      }
    } else if (arg == "--keys") {
      if (!ParseU64(value(), &config.keys) || config.keys < 1) {
        return Usage();
      }
    } else if (arg == "--skew") {
      if (!ParseDouble(value(), &config.skew) || config.skew < 0) {
        return Usage();
      }
    } else if (arg == "--seed") {
      if (!ParseU64(value(), &config.seed)) return Usage();
    } else if (arg == "--batch") {
      if (!ParseU64(value(), &config.batch) || config.batch < 1 ||
          config.batch > net::kMaxBatchTuples) {
        return Usage();
      }
    } else if (arg == "--ack-every") {
      if (!ParseU64(value(), &n) || n < 1) return Usage();
      config.client.ack_every = static_cast<uint32_t>(n);
    } else if (arg == "--window") {
      if (!ParseU64(value(), &n)) return Usage();
      config.client.max_outstanding_acks = static_cast<uint32_t>(n);
    } else if (arg == "--mode") {
      const char* v = value();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "closed") == 0) {
        config.open_loop = false;
      } else if (std::strcmp(v, "open") == 0) {
        config.open_loop = true;
      } else {
        return Usage();
      }
    } else if (arg == "--rate") {
      if (!ParseU64(value(), &config.rate)) return Usage();
    } else if (arg == "--connect-timeout-ms") {
      if (!ParseU64(value(), &n) || n > UINT32_MAX) return Usage();
      config.client.connect_timeout_ms = static_cast<uint32_t>(n);
    } else if (arg == "--io-timeout-ms") {
      if (!ParseU64(value(), &n) || n > UINT32_MAX) return Usage();
      config.client.read_timeout_ms = static_cast<uint32_t>(n);
      config.client.write_timeout_ms = static_cast<uint32_t>(n);
    } else if (arg == "--retries") {
      if (!ParseU64(value(), &n) || n > UINT32_MAX) return Usage();
      config.client.max_retries = static_cast<uint32_t>(n);
    } else if (arg == "--backoff-ms") {
      if (!ParseU64(value(), &n) || n > UINT32_MAX) return Usage();
      config.client.retry_backoff_ms = static_cast<uint32_t>(n);
    } else if (arg == "--reconnect") {
      config.client.auto_reconnect = true;
    } else if (arg == "--deadline-s") {
      if (!ParseU64(value(), &config.deadline_s) ||
          config.deadline_s < 1) {
        return Usage();
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (config.client.port == 0) return Usage();
  if (snapshot_op) return RunSnapshotOp(config.client);
  if (probe_op) return RunProbeOp(config.client);
  if (config.open_loop && config.rate == 0) {
    std::fprintf(stderr, "open loop requires --rate\n");
    return Usage();
  }

  // Pre-generate so the hot loop measures the serving path only.
  StreamSpec spec;
  spec.stream_size = config.tuples;
  spec.num_distinct = config.keys;
  spec.skew = config.skew;
  spec.seed = config.seed;
  const std::vector<Tuple> tuples = GenerateStream(spec);

  std::vector<WorkerResult> results(config.connections);
  std::vector<std::thread> workers;
  const size_t per_conn =
      (tuples.size() + config.connections - 1) / config.connections;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t c = 0; c < config.connections; ++c) {
    const size_t begin = std::min<size_t>(c * per_conn, tuples.size());
    const size_t end =
        std::min<size_t>(begin + per_conn, tuples.size());
    workers.emplace_back(RunWorker, std::cref(config), std::cref(tuples),
                         begin, end, &results[c]);
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  uint64_t sent = 0;
  uint64_t shed = 0;
  uint64_t reconnects = 0;
  uint64_t retries = 0;
  uint64_t replayed = 0;
  for (const WorkerResult& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "loadgen: %s\n", r.error.c_str());
      return 1;
    }
    sent += r.sent;
    shed += r.shed;
    reconnects += r.reconnects;
    retries += r.retries;
    replayed += r.replayed;
  }
  const double rate = elapsed > 0 ? static_cast<double>(sent) / elapsed : 0;
  std::printf(
      "loadgen mode=%s connections=%llu tuples=%llu keys=%llu "
      "skew=%.2f batch=%llu\n",
      config.open_loop ? "open" : "closed",
      static_cast<unsigned long long>(config.connections),
      static_cast<unsigned long long>(config.tuples),
      static_cast<unsigned long long>(config.keys), config.skew,
      static_cast<unsigned long long>(config.batch));
  std::printf("elapsed_s=%.3f updates_per_s=%.0f sent=%llu shed=%llu\n",
              elapsed, rate, static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(shed));
  if (config.client.auto_reconnect || config.client.max_retries > 0) {
    std::printf("resilience reconnects=%llu retries=%llu replayed=%llu\n",
                static_cast<unsigned long long>(reconnects),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(replayed));
  }

  net::Client stats_client;
  if (stats_client.Connect(config.client) == std::nullopt) {
    net::WireStats stats;
    if (stats_client.Stats(&stats) == std::nullopt) {
      std::printf(
          "server shards=%u ingested=%llu shed=%llu inline=%llu "
          "exchanges=%llu memory=%llu\n",
          stats.num_shards,
          static_cast<unsigned long long>(stats.ingested),
          static_cast<unsigned long long>(stats.shed_weight),
          static_cast<unsigned long long>(stats.inline_applied),
          static_cast<unsigned long long>(stats.exchanges),
          static_cast<unsigned long long>(stats.memory_bytes));
    }
  }
  std::fflush(stdout);

  if (config.verify && shed == 0) {
    return VerifyOneSided(config.client, tuples);
  }
  return 0;
}
