// asketchd — the sharded ASketch network server (docs/OPERATIONS.md).
//
//   asketchd [--port P] [--shards N] [--sketch countmin|salsa]
//            [--bytes B] [--width W]
//            [--filter F] [--seed S] [--prefix PFX] [--retain R]
//            [--recover] [--checkpoint-interval-ms MS]
//            [--metrics-port MP] [--ingest-mode queue|delta]
//            [--queue-batches Q] [--delta-flush-tuples T]
//            [--overload inline|shed] [--sample-rate R]
//            [--adaptive-sampling] [--max-connections C]
//            [--idle-timeout-ms MS]
//
// Binds 127.0.0.1:P (0 = ephemeral) and announces the bound port on
// stdout ("asketchd listening on 127.0.0.1:PORT ...", flushed) so
// scripts can scrape it. With --prefix, checkpoints go to the CKP-style
// SnapshotStore `<PFX>.<gen>.snap`; --recover adopts the newest valid
// generation before serving and fails hard when none validates. With
// --metrics-port, the obs HTTP exporter serves /metrics, /metrics.json,
// /stats, and /trace.json on a second loopback port.
//
// Signals: SIGINT/SIGTERM stop gracefully (drain + final checkpoint);
// SIGUSR1 cuts a checkpoint without stopping. Handlers only set flags;
// all work happens on the main thread.
//
// Exit codes: 2 usage error, 1 runtime failure, 0 clean shutdown.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/net/server.h"
#include "src/obs/export.h"
#include "src/obs/http_exporter.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace {

using namespace asketch;

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_checkpoint = 0;

void HandleStopSignal(int) { g_stop = 1; }
void HandleCheckpointSignal(int) { g_checkpoint = 1; }

// Flags are grouped by subsystem, in the same order as the flag table
// in docs/OPERATIONS.md, so the two tell the same story.
int Usage() {
  std::fprintf(
      stderr,
      "usage: asketchd [--port P] [--shards N]\n"
      "                [--sketch countmin|salsa] [--bytes B] [--width W]\n"
      "                [--filter F] [--seed S]\n"
      "                [--max-connections C] [--idle-timeout-ms MS]\n"
      "                [--ingest-mode queue|delta] [--queue-batches Q]\n"
      "                [--delta-flush-tuples T] [--overload inline|shed]\n"
      "                [--sample-rate R] [--adaptive-sampling]\n"
      "                [--prefix PFX] [--retain R] [--recover]\n"
      "                [--checkpoint-interval-ms MS] [--metrics-port MP]\n"
      "\n"
      "serving:\n"
      "  --port P            TCP port on 127.0.0.1 (default 0 = "
      "ephemeral)\n"
      "  --shards N          keyspace shards, one worker each (default "
      "4)\n"
      "  --sketch BACKEND    per-shard sketch backend: countmin "
      "(default) or salsa\n"
      "  --bytes B           per-shard synopsis budget (default "
      "131072)\n"
      "  --width W           sketch rows per shard (default 8)\n"
      "  --filter F          filter slots per shard (default 32)\n"
      "  --seed S            hash seed (default 42)\n"
      "  --max-connections C concurrent client limit (default 64)\n"
      "  --idle-timeout-ms MS close connections silent this long\n"
      "                      (default 0 = never; slow-loris defense)\n"
      "\n"
      "ingest:\n"
      "  --ingest-mode MODE  queue (default; serial per-tuple replay)\n"
      "                      or delta (per-connection delta sketches\n"
      "                      merged at epoch boundaries)\n"
      "  --queue-batches Q   bounded per-shard queue length (default "
      "64)\n"
      "  --delta-flush-tuples T  delta epoch length in tuples "
      "(default 8192)\n"
      "  --overload POLICY   inline (default) or shed\n"
      "  --sample-rate R     tail-update sampling rate in (0, 1]\n"
      "                      (default 1.0 = every update; below 1.0 the\n"
      "                      sketch tail becomes unbiased, not one-sided;\n"
      "                      the filter head stays exact)\n"
      "  --adaptive-sampling start at rate 1.0 and back off toward\n"
      "                      --sample-rate only under queue pressure\n"
      "\n"
      "persistence:\n"
      "  --prefix PFX        snapshot store prefix (default: persistence "
      "off)\n"
      "  --retain R          snapshot generations kept (default 3)\n"
      "  --recover           adopt the newest valid snapshot before "
      "serving\n"
      "  --checkpoint-interval-ms MS  background checkpoint period "
      "(default 0 = off)\n"
      "\n"
      "telemetry:\n"
      "  --metrics-port MP   telemetry HTTP port (default: exporter "
      "off)\n");
  return 2;
}

/// Strict decimal parse; false on empty/trailing-garbage/overflow input.
bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::ServerOptions options;
  uint64_t metrics_port = 0;
  bool metrics_enabled = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    uint64_t n = 0;
    if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--port") {
      if (!ParseU64(value(), &n) || n > 65535) return Usage();
      options.port = static_cast<uint16_t>(n);
    } else if (arg == "--shards") {
      if (!ParseU64(value(), &n) || n < 1 || n > 256) return Usage();
      options.shards.num_shards = static_cast<uint32_t>(n);
    } else if (arg == "--sketch") {
      const char* v = value();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "countmin") == 0) {
        options.shards.backend = net::SketchBackend::kCountMin;
      } else if (std::strcmp(v, "salsa") == 0) {
        options.shards.backend = net::SketchBackend::kSalsa;
      } else {
        return Usage();
      }
    } else if (arg == "--bytes") {
      if (!ParseU64(value(), &n) || n < 1024) return Usage();
      options.shards.shard_config.total_bytes = n;
    } else if (arg == "--width") {
      // Both backends stage one bucket per row in fixed 64-entry blocks
      // (CountMinConfig::kMaxWidth); reject instead of silently clamping.
      if (!ParseU64(value(), &n) || n < 1 || n > 64) return Usage();
      options.shards.shard_config.width = static_cast<uint32_t>(n);
    } else if (arg == "--filter") {
      if (!ParseU64(value(), &n) || n < 1) return Usage();
      options.shards.shard_config.filter_items = static_cast<uint32_t>(n);
    } else if (arg == "--seed") {
      if (!ParseU64(value(), &n)) return Usage();
      options.shards.shard_config.seed = n;
    } else if (arg == "--prefix") {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.snapshot_prefix = v;
    } else if (arg == "--retain") {
      if (!ParseU64(value(), &n) || n < 1) return Usage();
      options.snapshot_retain = static_cast<uint32_t>(n);
    } else if (arg == "--checkpoint-interval-ms") {
      if (!ParseU64(value(), &n)) return Usage();
      options.checkpoint_interval_ms = static_cast<uint32_t>(n);
    } else if (arg == "--metrics-port") {
      if (!ParseU64(value(), &metrics_port) || metrics_port > 65535) {
        return Usage();
      }
      metrics_enabled = true;
    } else if (arg == "--queue-batches") {
      if (!ParseU64(value(), &n) || n < 1) return Usage();
      options.shards.max_queue_batches = n;
    } else if (arg == "--ingest-mode") {
      const char* v = value();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "queue") == 0) {
        options.shards.ingest_mode = net::IngestMode::kQueue;
      } else if (std::strcmp(v, "delta") == 0) {
        options.shards.ingest_mode = net::IngestMode::kDelta;
      } else {
        return Usage();
      }
    } else if (arg == "--delta-flush-tuples") {
      if (!ParseU64(value(), &n) || n < 1 || n > UINT32_MAX) return Usage();
      options.shards.delta_flush_tuples = static_cast<uint32_t>(n);
    } else if (arg == "--sample-rate") {
      const char* v = value();
      if (v == nullptr || *v == '\0') return Usage();
      errno = 0;
      char* end = nullptr;
      const double rate = std::strtod(v, &end);
      if (errno != 0 || end == nullptr || *end != '\0') return Usage();
      options.shards.sample_rate = rate;  // range-checked by Validate()
    } else if (arg == "--adaptive-sampling") {
      options.shards.adaptive_sampling = true;
    } else if (arg == "--overload") {
      const char* v = value();
      if (v == nullptr) return Usage();
      if (std::strcmp(v, "inline") == 0) {
        options.shards.overload = OverloadPolicy::kInlineApply;
      } else if (std::strcmp(v, "shed") == 0) {
        options.shards.overload = OverloadPolicy::kShed;
      } else {
        return Usage();
      }
    } else if (arg == "--max-connections") {
      if (!ParseU64(value(), &n) || n < 1) return Usage();
      options.max_connections = static_cast<uint32_t>(n);
    } else if (arg == "--idle-timeout-ms") {
      if (!ParseU64(value(), &n) || n > UINT32_MAX) return Usage();
      options.idle_timeout_ms = static_cast<uint32_t>(n);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (auto error = options.shards.Validate()) {
    std::fprintf(stderr, "bad configuration: %s\n", error->c_str());
    return Usage();
  }

  net::Server server(options);
  if (auto error = server.Start()) {
    std::fprintf(stderr, "asketchd: %s\n", error->c_str());
    return 1;
  }
  if (server.recovered().has_value()) {
    const net::StateDigest& d = *server.recovered();
    std::printf("recovered generation=%llu ingested=%llu digest=0x%08x\n",
                static_cast<unsigned long long>(d.generation),
                static_cast<unsigned long long>(d.ingested), d.digest);
  }

  obs::MetricsHttpServer metrics_server;
  if (metrics_enabled) {
    metrics_server.AddHandler("/metrics", "text/plain; version=0.0.4", [] {
      return obs::RenderPrometheusText(
          obs::MetricsRegistry::Global().Collect());
    });
    metrics_server.AddHandler("/metrics.json", "application/json", [] {
      return obs::RenderMetricsJson(
          obs::MetricsRegistry::Global().Collect());
    });
    metrics_server.AddHandler("/stats", "application/json", [&server] {
      const net::WireStats s = server.shards().GetStats();
      char buffer[512];
      std::snprintf(buffer, sizeof(buffer),
                    "{\"num_shards\":%u,\"ingested\":%llu,"
                    "\"shed_weight\":%llu,\"inline_applied\":%llu,"
                    "\"filtered_weight\":%llu,\"sketch_weight\":%llu,"
                    "\"exchanges\":%llu,\"sketch_updates\":%llu,"
                    "\"memory_bytes\":%llu}",
                    s.num_shards,
                    static_cast<unsigned long long>(s.ingested),
                    static_cast<unsigned long long>(s.shed_weight),
                    static_cast<unsigned long long>(s.inline_applied),
                    static_cast<unsigned long long>(s.filtered_weight),
                    static_cast<unsigned long long>(s.sketch_weight),
                    static_cast<unsigned long long>(s.exchanges),
                    static_cast<unsigned long long>(s.sketch_updates),
                    static_cast<unsigned long long>(s.memory_bytes));
      return std::string(buffer);
    });
    metrics_server.AddHandler("/trace.json", "application/json", [] {
      return obs::RenderTraceJson(obs::TraceRegistry::Global().Collect());
    });
    if (!metrics_server.Start(static_cast<uint16_t>(metrics_port))) {
      std::fprintf(stderr, "cannot bind metrics port 127.0.0.1:%llu\n",
                   static_cast<unsigned long long>(metrics_port));
      server.Stop();
      return 1;
    }
    std::printf("metrics on http://127.0.0.1:%u/metrics\n",
                metrics_server.port());
  }

  // Announced last and flushed: scripts wait for this line, and
  // everything they might need (recovery digest, metrics port) is
  // already printed above it.
  std::printf("asketchd listening on 127.0.0.1:%u (%u shards)\n",
              server.port(), server.shards().num_shards());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
#ifdef SIGUSR1
  std::signal(SIGUSR1, HandleCheckpointSignal);
#endif

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_checkpoint != 0) {
      g_checkpoint = 0;
      net::StateDigest digest;
      if (auto error = server.Checkpoint(&digest)) {
        std::fprintf(stderr, "checkpoint failed: %s\n", error->c_str());
      } else {
        std::printf(
            "checkpoint generation=%llu ingested=%llu digest=0x%08x\n",
            static_cast<unsigned long long>(digest.generation),
            static_cast<unsigned long long>(digest.ingested),
            digest.digest);
        std::fflush(stdout);
      }
    }
  }

  metrics_server.Stop();
  server.Stop();  // drains and cuts the final checkpoint
  std::printf("asketchd stopped\n");
  return 0;
}
