#!/usr/bin/env bash
# End-to-end network fault-tolerance smoke: drive a resilient loadgen at
# asketchd THROUGH asketch_chaosproxy (seeded delays + one mid-stream
# RST), then kill -9 the server mid-load and restart it with --recover.
# The client must ride out every fault — reconnect through the proxy,
# replay its unacked UPDATE batches from the last cumulative ack — and
# the final over-the-wire estimates must stay one-sided versus the exact
# per-key counts of the full stream (loadgen --verify).
#
# The pause file closes the ack-horizon/checkpoint race that would
# otherwise make the one-sided assertion flaky: while it exists the
# proxy forwards nothing, so the client's ack horizon freezes at a point
# the server has already ingested; the SIGUSR1 checkpoint cut after the
# pause therefore covers every acked tuple, and everything newer is
# still in the client's replay buffer. Acked-and-checkpointed batches
# that get replayed anyway only over-count — which one-sided estimates
# tolerate by construction (docs/PROTOCOL.md "Ack-based UPDATE replay").
#
# The whole flow runs once per sketch backend (--sketch countmin, then
# --sketch salsa): fault tolerance must be backend-agnostic. The fault
# schedule is fully determined by the chaosproxy flags + --seed, so a
# failure replays exactly.
#
# usage: asketchd_chaos_smoke.sh <build_dir>
set -u

BUILD_DIR=${1:?usage: asketchd_chaos_smoke.sh <build_dir>}
ASKETCHD="$BUILD_DIR/tools/asketchd"
LOADGEN="$BUILD_DIR/tools/asketch_loadgen"
PROXY="$BUILD_DIR/tools/asketch_chaosproxy"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/asketchd_chaos.XXXXXX")
SERVER_PID=""
PROXY_PID=""
LOAD_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null;
      [ -n "$PROXY_PID" ] && kill -9 "$PROXY_PID" 2>/dev/null;
      [ -n "$LOAD_PID" ] && kill -9 "$LOAD_PID" 2>/dev/null;
      rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

[ -x "$ASKETCHD" ] || fail "missing $ASKETCHD"
[ -x "$LOADGEN" ] || fail "missing $LOADGEN"
[ -x "$PROXY" ] || fail "missing $PROXY"

# Starts asketchd with stdout to $1 and waits for the listening line;
# sets SERVER_PID and PORT.
start_server() {
  local log=$1; shift
  "$ASKETCHD" "${DAEMON_FLAGS[@]}" "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if grep -q 'asketchd listening on 127.0.0.1:' "$log"; then
      PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
      return 0
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died: $(cat "$log")"
    sleep 0.1
  done
  fail "server never started listening: $(cat "$log")"
}

run_smoke() {
  local backend=$1
  local dir="$WORK/$backend"
  mkdir -p "$dir"
  PREFIX="$dir/ckpt/serve"
  PAUSE="$dir/pause"
  DAEMON_FLAGS=(--shards 4 --bytes 32768 --prefix "$PREFIX"
                --sketch "$backend")
  echo "--- backend: $backend ---"

  start_server "$dir/server1.log" --port 0
  echo "server up on port $PORT (pid $SERVER_PID)"

  # Seeded chaos: jittered delays throughout, and the first connection
  # is RST mid-stream after 256 KiB — an early forced reconnect+replay
  # before the kill -9 even happens.
  "$PROXY" --upstream-port "$PORT" --listen-port 0 --seed 11 \
    --delay-every 64 --delay-ms 3 --reset-after-bytes 262144 \
    --fault-connections 1 --pause-file "$PAUSE" \
    >"$dir/proxy.log" 2>&1 &
  PROXY_PID=$!
  for _ in $(seq 1 100); do
    grep -q 'chaosproxy listening on 127.0.0.1:' "$dir/proxy.log" && break
    kill -0 "$PROXY_PID" 2>/dev/null || fail "proxy died: $(cat "$dir/proxy.log")"
    sleep 0.1
  done
  PPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$dir/proxy.log")
  [ -n "$PPORT" ] || fail "no proxy port in: $(cat "$dir/proxy.log")"
  echo "proxy up on port $PPORT (pid $PROXY_PID)"

  # Paced open loop (~12s of wall clock) so the kill lands mid-load.
  # Resilient client: deadlines + retries + reconnect/replay; --verify
  # checks the one-sided bound for the FULL stream at the end.
  "$LOADGEN" --port "$PPORT" --tuples 600000 --keys 20000 --seed 5 \
    --batch 1024 --mode open --rate 50000 \
    --connect-timeout-ms 2000 --io-timeout-ms 2000 \
    --retries 40 --backoff-ms 50 --reconnect --deadline-s 120 \
    --verify >"$dir/load.log" 2>&1 &
  LOAD_PID=$!

  sleep 2
  kill -0 "$LOAD_PID" 2>/dev/null || fail "loadgen finished too early: $(cat "$dir/load.log")"

  # Freeze the proxy (acks stop reaching the client), then cut a
  # checkpoint that is guaranteed to cover every acked tuple.
  touch "$PAUSE"
  sleep 0.3
  kill -USR1 "$SERVER_PID" 2>/dev/null || fail "server gone before checkpoint"
  for _ in $(seq 1 100); do
    grep -q '^checkpoint generation=' "$dir/server1.log" && break
    sleep 0.1
  done
  grep -q '^checkpoint generation=' "$dir/server1.log" \
    || fail "no checkpoint line: $(cat "$dir/server1.log")"
  echo "checkpoint cut under pause"

  kill -9 "$SERVER_PID" 2>/dev/null || fail "server already gone before kill"
  wait "$SERVER_PID" 2>/dev/null
  [ $? -eq 137 ] || fail "expected SIGKILL exit 137"
  SERVER_PID=""
  echo "killed server mid-load"

  start_server "$dir/server2.log" --port "$PORT" --recover
  RECOVERED=$(sed -n 's/^recovered \(.*\)$/\1/p' "$dir/server2.log")
  [ -n "$RECOVERED" ] || fail "no recovered line in: $(cat "$dir/server2.log")"
  echo "restarted with --recover: $RECOVERED"
  rm -f "$PAUSE"

  wait "$LOAD_PID"
  LOAD_STATUS=$?
  LOAD_PID=""
  [ "$LOAD_STATUS" -eq 0 ] \
    || fail "loadgen failed (status $LOAD_STATUS): $(cat "$dir/load.log")"

  grep -q 'one_sided_violations=0' "$dir/load.log" \
    || fail "one-sided verification missing/failed: $(cat "$dir/load.log")"
  RECONNECTS=$(sed -n 's/^resilience reconnects=\([0-9]*\).*/\1/p' \
               "$dir/load.log")
  [ -n "$RECONNECTS" ] || fail "no resilience line: $(cat "$dir/load.log")"
  [ "$RECONNECTS" -ge 1 ] \
    || fail "client never reconnected — the chaos did not bite: $(cat "$dir/load.log")"
  echo "loadgen survived: reconnects=$RECONNECTS, one-sided verified"

  kill "$PROXY_PID" 2>/dev/null
  wait "$PROXY_PID" 2>/dev/null
  PROXY_PID=""
  kill "$SERVER_PID" 2>/dev/null
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=""
}

run_smoke countmin
run_smoke salsa

echo "PASS: kill -9 + --recover behind seeded chaos stays one-sided (both backends)"
