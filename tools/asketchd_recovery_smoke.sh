#!/usr/bin/env bash
# End-to-end serving-layer crash recovery: start asketchd with a
# snapshot prefix, ingest over TCP, cut an explicit snapshot (recording
# its digest), kill -9 the server while a second ingest is in flight,
# restart with --recover, and require the recovered state digest — both
# the one printed at startup and the one probed over the wire — to be
# bit-identical to the recorded snapshot digest. Everything ingested
# after the snapshot must be gone: durability is exactly the snapshot,
# no more and no less.
#
# The whole flow runs once per (sketch backend × ingest mode) —
# countmin/salsa × queue/delta: recovery must be agnostic to both the
# backend and the ingest path, and delta mode's durability contract is
# the same (the snapshot cut drains and flushes open deltas first).
#
# usage: asketchd_recovery_smoke.sh <build_dir>
set -u

BUILD_DIR=${1:?usage: asketchd_recovery_smoke.sh <build_dir>}
ASKETCHD="$BUILD_DIR/tools/asketchd"
LOADGEN="$BUILD_DIR/tools/asketch_loadgen"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/asketchd_smoke.XXXXXX")
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

[ -x "$ASKETCHD" ] || fail "missing $ASKETCHD"
[ -x "$LOADGEN" ] || fail "missing $LOADGEN"

# Starts asketchd with stdout to $1 and waits for the listening line;
# sets SERVER_PID and PORT.
start_server() {
  local log=$1; shift
  "$ASKETCHD" "${DAEMON_FLAGS[@]}" "$@" >"$log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 1 100); do
    if grep -q 'asketchd listening on 127.0.0.1:' "$log"; then
      PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
      return 0
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server died: $(cat "$log")"
    sleep 0.1
  done
  fail "server never started listening: $(cat "$log")"
}

run_smoke() {
  local backend=$1
  local ingest_mode=$2
  local dir="$WORK/$backend-$ingest_mode"
  mkdir -p "$dir"
  PREFIX="$dir/ckpt/serve"
  DAEMON_FLAGS=(--port 0 --shards 4 --bytes 32768 --prefix "$PREFIX"
                --sketch "$backend" --ingest-mode "$ingest_mode")
  echo "--- backend: $backend, ingest-mode: $ingest_mode ---"

  start_server "$dir/server1.log"
  echo "server up on port $PORT (pid $SERVER_PID)"

  "$LOADGEN" --port "$PORT" --tuples 200000 --keys 20000 --seed 5 \
    >"$dir/load1.log" 2>&1 || fail "initial load: $(cat "$dir/load1.log")"

  "$LOADGEN" --port "$PORT" --snapshot >"$dir/snap.log" 2>&1 \
    || fail "snapshot: $(cat "$dir/snap.log")"
  SAVED=$(sed -n 's/^snapshot \(.*\)$/\1/p' "$dir/snap.log")
  [ -n "$SAVED" ] || fail "no snapshot line in: $(cat "$dir/snap.log")"
  echo "recorded snapshot: $SAVED"

  # Second ingest, killed mid-flight. The loadgen is expected to die
  # with a connection error once the server is gone — ignore its status.
  "$LOADGEN" --port "$PORT" --tuples 8000000 --keys 20000 --seed 6 \
    >"$dir/load2.log" 2>&1 &
  LOAD_PID=$!
  sleep 0.3
  kill -9 "$SERVER_PID" 2>/dev/null || fail "server already gone before kill"
  wait "$SERVER_PID" 2>/dev/null
  [ $? -eq 137 ] || fail "expected SIGKILL exit 137"
  SERVER_PID=""
  wait "$LOAD_PID" 2>/dev/null
  echo "killed server mid-ingest"

  start_server "$dir/server2.log" --recover
  RECOVERED=$(sed -n 's/^recovered \(.*\)$/\1/p' "$dir/server2.log")
  [ -n "$RECOVERED" ] || fail "no recovered line in: $(cat "$dir/server2.log")"
  echo "startup reports: $RECOVERED"
  [ "$RECOVERED" = "$SAVED" ] \
    || fail "recovered state differs from snapshot: '$RECOVERED' vs '$SAVED'"

  "$LOADGEN" --port "$PORT" --probe >"$dir/probe.log" 2>&1 \
    || fail "probe: $(cat "$dir/probe.log")"
  PROBED=$(sed -n 's/^digest \(.*\)$/\1/p' "$dir/probe.log")
  [ "$PROBED" = "$SAVED" ] \
    || fail "wire digest differs from snapshot: '$PROBED' vs '$SAVED'"

  kill "$SERVER_PID" 2>/dev/null
  wait "$SERVER_PID" 2>/dev/null
  SERVER_PID=""
}

run_smoke countmin queue
run_smoke countmin delta
run_smoke salsa queue
run_smoke salsa delta

echo "PASS: recovered serving state is bit-identical to the snapshot (both backends, both ingest modes)"
