#!/usr/bin/env bash
# Documentation consistency checks, run as a ctest and as the CI docs
# job:
#   1. every relative markdown link in *.md and docs/*.md resolves to a
#      file in the tree;
#   2. every `asketch_cli <subcommand>` named in the user-facing docs
#      exists in `asketch_cli` usage output;
#   3. every `--flag` attributed to asketchd / asketch_loadgen in the
#      docs (and every flag in docs/OPERATIONS.md) exists in the usage
#      output of one of the shipped tools;
#   4. the reverse of 3: every `--flag` a shipped tool advertises in
#      its usage output is mentioned somewhere in the user-facing docs
#      (a flag added without documentation fails here);
#   5. the core documentation set exists — a renamed or deleted page
#      fails instead of silently orphaning its inbound references.
# The deeper doc pins — PROTOCOL.md constants/opcodes and the
# OPERATIONS.md metric table — are compiled tests (net_protocol_test,
# docs_operations_test); this script covers what grep can.
#
# usage: tools/check_docs.sh [build_dir]
set -u

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$REPO_ROOT/build"}
fail=0

# User-facing docs: tool subcommands/flags mentioned here must exist.
USER_DOCS=("$REPO_ROOT/README.md" "$REPO_ROOT/DESIGN.md"
           "$REPO_ROOT/EXPERIMENTS.md" "$REPO_ROOT"/docs/*.md)

# ---------------------------------------------------------------- links
for file in "$REPO_ROOT"/*.md "$REPO_ROOT"/docs/*.md; do
  [ -f "$file" ] || continue
  dir=$(dirname "$file")
  while IFS= read -r link; do
    target=${link%%#*}
    [ -z "$target" ] && continue          # pure #anchor
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ]; then
      echo "FAIL dead link in ${file#"$REPO_ROOT"/}: ($link)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed 's/^](//; s/)$//')
done

# ----------------------------------------------------- tool usage texts
# Every tool answers --help (an unrecognized flag) with its usage text
# and a prompt nonzero exit. Never invoke a tool bare here: asketchd
# with no arguments starts a server and blocks.
usage_of() {
  "$1" --help 2>&1
  true
}
for tool in asketch_cli asketchd asketch_loadgen make_stream \
            asketch_chaosproxy; do
  if [ ! -x "$BUILD_DIR/tools/$tool" ]; then
    echo "FAIL missing binary $BUILD_DIR/tools/$tool (build tools first)"
    exit 1
  fi
done
ALL_USAGE=$(for t in asketch_cli asketchd asketch_loadgen make_stream \
                     asketch_chaosproxy; do
              usage_of "$BUILD_DIR/tools/$t"
            done)
CLI_USAGE=$(usage_of "$BUILD_DIR/tools/asketch_cli")

# ------------------------------------------------- asketch_cli subcmds
# `asketch_cli foo` in docs (prose or fenced code) names a subcommand.
for sub in $(grep -ohE 'asketch_cli +[a-z][a-z-]*' "${USER_DOCS[@]}" \
               2>/dev/null | awk '{print $2}' | sort -u); do
  if ! printf '%s\n' "$CLI_USAGE" | grep -qE "(^|[^a-z-])$sub([^a-z-]|$)"; then
    echo "FAIL documented asketch_cli subcommand '$sub' not in usage output"
    fail=1
  fi
done

# ------------------------------------------------------------- flags
# Flags the docs attribute to the daemon/loadgen inline, plus every
# flag named anywhere in the operator guide.
{
  grep -ohE '(asketchd|asketch_loadgen) +--[a-z][a-z-]*' \
       "${USER_DOCS[@]}" 2>/dev/null | grep -oE '\-\-[a-z-]+'
  grep -ohE '\-\-[a-z][a-z-]*' "$REPO_ROOT/docs/OPERATIONS.md"
} | sort -u | while IFS= read -r flag; do
  if ! printf '%s\n' "$ALL_USAGE" | grep -qF -- "$flag"; then
    echo "FAIL documented flag '$flag' not in any tool's usage output"
    # `while` runs in a subshell: signal through a marker file.
    touch "$BUILD_DIR/.check_docs_flag_fail"
  fi
done
if [ -e "$BUILD_DIR/.check_docs_flag_fail" ]; then
  rm -f "$BUILD_DIR/.check_docs_flag_fail"
  fail=1
fi

# ------------------------------------------- usage ⊆ docs (reverse)
# Every flag a tool's usage output advertises must appear in at least
# one user-facing doc. Usage lines shape flags as `--name` tokens;
# single-letter and non-flag dashes don't match the pattern.
ALL_DOC_TEXT=$(cat "${USER_DOCS[@]}" 2>/dev/null)
for flag in $(printf '%s\n' "$ALL_USAGE" | grep -ohE '\-\-[a-z][a-z-]*' \
                | sort -u); do
  [ "$flag" = "--help" ] && continue   # the conventional meta-flag
  if ! printf '%s\n' "$ALL_DOC_TEXT" | grep -qF -- "$flag"; then
    echo "FAIL tool usage advertises flag '$flag' but no user-facing doc mentions it"
    fail=1
  fi
done

# -------------------------------------------------- core doc set
for doc in README.md DESIGN.md EXPERIMENTS.md docs/ARCHITECTURE.md \
           docs/ALGORITHMS.md docs/OPERATIONS.md docs/PROTOCOL.md; do
  if [ ! -f "$REPO_ROOT/$doc" ]; then
    echo "FAIL core document $doc is missing"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs.sh: FAILED"
  exit 1
fi
echo "check_docs.sh: OK (links, subcommands, flags)"
