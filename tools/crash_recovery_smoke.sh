#!/usr/bin/env bash
# Crash-recovery smoke: ingest a stream with periodic checkpoints, kill
# the process with SIGKILL mid-run, restart with --recover, and require
# the recovered synopsis to be BYTE-IDENTICAL to a clean uninterrupted
# run. Identity (not mere closeness) holds because the checkpoint loop
# re-adopts every saved snapshot, making the in-memory trajectory a
# deterministic function of (stream, checkpoint interval) regardless of
# where the crash lands.
#
# usage: crash_recovery_smoke.sh <build_dir>
set -u

BUILD_DIR=${1:?usage: crash_recovery_smoke.sh <build_dir>}
CLI="$BUILD_DIR/tools/asketch_cli"
MAKE_STREAM="$BUILD_DIR/tools/make_stream"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/asketch_smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

[ -x "$CLI" ] || fail "missing $CLI"
[ -x "$MAKE_STREAM" ] || fail "missing $MAKE_STREAM"

STREAM="$WORK/stream.ask"
# Large enough that the run takes a few seconds, so the kill below lands
# mid-ingest on any reasonable machine.
"$MAKE_STREAM" "$STREAM" --n 30000000 --m 200000 --skew 1.2 --seed 11 \
  || fail "make_stream"

CKPT_FLAGS=(--bytes 131072 --width 8 --filter 32 --seed 3 --every 1000000)

# Reference: clean, uninterrupted checkpointed run.
"$CLI" checkpoint "$STREAM" "$WORK/clean/ck" "${CKPT_FLAGS[@]}" \
  || fail "clean checkpoint run"
"$CLI" restore "$WORK/clean/ck" "$WORK/clean.as" || fail "clean restore"

# Crashed run: same configuration, SIGKILLed mid-ingest.
"$CLI" checkpoint "$STREAM" "$WORK/crash/ck" "${CKPT_FLAGS[@]}" &
PID=$!
sleep 0.4
if kill -9 "$PID" 2>/dev/null; then
  wait "$PID" 2>/dev/null
  STATUS=$?
  [ "$STATUS" -eq 137 ] || fail "expected SIGKILL exit 137, got $STATUS"
  echo "killed ingest (pid $PID) mid-run"
else
  # The run beat the timer. Recovery from a completed run must still
  # reproduce the clean synopsis, so the check below remains valid.
  wait "$PID" 2>/dev/null || fail "un-killed run exited nonzero"
  echo "run finished before the kill fired; continuing with recovery"
fi

"$CLI" recover "$WORK/crash/ck" || fail "recover inspection"

# Restart from the newest valid generation and finish the stream.
"$CLI" checkpoint "$STREAM" "$WORK/crash/ck" "${CKPT_FLAGS[@]}" --recover \
  || fail "recovering checkpoint run"
"$CLI" restore "$WORK/crash/ck" "$WORK/recovered.as" \
  || fail "recovered restore"

cmp "$WORK/clean.as" "$WORK/recovered.as" \
  || fail "recovered synopsis differs from clean run"

echo "PASS: recovered synopsis is byte-identical to the clean run"
