// make_stream: generate a binary tuple stream file for asketch_cli.
//
//   make_stream <out.ask> [--n TUPLES] [--m DISTINCT] [--skew Z]
//               [--seed S] [--trace ip|kosarak] [--scale X]
//
// Either a raw Zipf spec (--n/--m/--skew) or one of the simulated
// real-world trace shapes (--trace, optionally scaled with --scale).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/workload/dataset_io.h"
#include "src/workload/stream_generator.h"
#include "src/workload/trace_simulators.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: make_stream <out.ask> [--n TUPLES] [--m DISTINCT]\n"
      "                   [--skew Z] [--seed S]\n"
      "                   [--trace ip|kosarak] [--scale X]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asketch;
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string out_path = argv[1];
  StreamSpec spec;
  spec.stream_size = 1'000'000;
  spec.num_distinct = 100'000;
  spec.skew = 1.5;
  spec.seed = 7;
  std::string trace;
  double trace_scale = 0.01;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = argv[i + 1];
    if (flag == "--n") {
      spec.stream_size = std::strtoull(value, nullptr, 10);
    } else if (flag == "--m") {
      spec.num_distinct =
          static_cast<uint32_t>(std::strtoull(value, nullptr, 10));
    } else if (flag == "--skew") {
      spec.skew = std::atof(value);
    } else if (flag == "--seed") {
      spec.seed = std::strtoull(value, nullptr, 10);
    } else if (flag == "--trace") {
      trace = value;
    } else if (flag == "--scale") {
      trace_scale = std::atof(value);
    } else {
      Usage();
      return 2;
    }
  }
  if (trace == "ip") {
    spec = IpTraceLikeSpec(trace_scale, spec.seed);
  } else if (trace == "kosarak") {
    spec = KosarakLikeSpec(trace_scale, spec.seed);
  } else if (!trace.empty()) {
    std::fprintf(stderr, "unknown trace '%s'\n", trace.c_str());
    return 2;
  }
  if (const auto error = spec.Validate()) {
    std::fprintf(stderr, "invalid spec: %s\n", error->c_str());
    return 2;
  }
  std::fprintf(stderr, "generating %s ...\n", spec.ToString().c_str());
  const std::vector<Tuple> stream = GenerateStream(spec);
  if (const auto error = WriteStreamFile(out_path, stream)) {
    std::fprintf(stderr, "write failed: %s\n", error->c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu tuples to %s\n", stream.size(),
               out_path.c_str());
  return 0;
}
